#include "store/reader.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <limits>
#include <utility>

#include "store/record_codec.h"

namespace cg::store {
namespace {

std::optional<Reader> fail(Error* error, fault::ArchiveFault code,
                           std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
  return std::nullopt;
}

}  // namespace

std::optional<Reader> Reader::open(const std::string& path, Error* error) {
  FileSource source(path);
  return from_source(source, error);
}

std::optional<Reader> Reader::from_source(ByteSource& source, Error* error) {
  std::string bytes;
  if (const IoStatus status = source.read_all(&bytes); !status.ok()) {
    return fail(error, fault::ArchiveFault::kIoError, status.to_string());
  }
  return from_buffer(std::move(bytes), error);
}

std::optional<Reader> Reader::from_buffer(std::string bytes, Error* error) {
  const std::string header = encode_header();

  // Envelope. Magic first: "not a CGAR file" and "CGAR file cut short" are
  // different operational problems and get different taxonomy classes.
  const std::size_t magic_len = std::min(bytes.size(), std::size_t{8});
  if (std::string_view(bytes).substr(0, magic_len) !=
      std::string_view(header).substr(0, magic_len)) {
    return fail(error, fault::ArchiveFault::kBadMagic,
                "missing CGAR header magic");
  }
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return fail(error, fault::ArchiveFault::kTruncated,
                "file smaller than header + trailer");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(bytes[8]);
  if (version != kFormatVersion) {
    return fail(error, fault::ArchiveFault::kVersionMismatch,
                "header declares format v" + std::to_string(version) +
                    ", reader understands v" +
                    std::to_string(kFormatVersion));
  }
  const std::string_view tail =
      std::string_view(bytes).substr(bytes.size() - kTrailerSize);
  if (tail.substr(8) != kTrailerMagic) {
    return fail(error, fault::ArchiveFault::kTruncated,
                "missing trailer magic — archive not finalised or cut short");
  }
  ByteReader trailer(tail);
  const std::uint64_t footer_offset = trailer.u64le();
  const std::uint64_t footer_end = bytes.size() - kTrailerSize;
  if (footer_offset < kHeaderSize || footer_offset >= footer_end) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "trailer points the footer at offset " +
                    std::to_string(footer_offset) + ", outside the file");
  }

  // Footer block.
  Error block_error;
  const auto footer = decode_block(bytes, footer_offset, &block_error);
  if (!footer) {
    if (error != nullptr) *error = block_error;
    return std::nullopt;
  }
  if (footer->type != BlockType::kFooter ||
      footer_offset + footer->total_size != footer_end) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "trailer does not point at the footer block");
  }

  // Footer payload.
  ByteReader fr(footer->payload);
  const auto version_byte = fr.bytes(1);
  if (fr.failed) {
    return fail(error, fault::ArchiveFault::kCorruptIndex, "empty footer");
  }
  const std::uint8_t footer_version =
      static_cast<std::uint8_t>(version_byte[0]);
  if (footer_version != version) {
    return fail(error, fault::ArchiveFault::kVersionMismatch,
                "footer declares format v" + std::to_string(footer_version) +
                    " inside a v" + std::to_string(version) +
                    " file — mixed-version archive");
  }
  Reader reader;
  reader.info_.format_version = footer_version;
  const std::uint64_t schema = fr.varint();
  if (schema > instrument::kVisitLogSchemaVersion) {
    return fail(error, fault::ArchiveFault::kSchemaMismatch,
                "records use schema v" + std::to_string(schema) +
                    ", reader understands up to v" +
                    std::to_string(instrument::kVisitLogSchemaVersion));
  }
  reader.info_.schema_version = static_cast<std::uint32_t>(schema);
  reader.info_.corpus_seed = fr.varint();
  reader.info_.fault_seed = fr.varint();
  const std::uint64_t count = fr.varint();
  if (fr.failed || count > fr.remaining()) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "index count exceeds footer size");
  }

  // Index: delta-decoded, then the consistency argument — entries must tile
  // [header, footer) exactly, with strictly increasing ranks.
  reader.index_.reserve(static_cast<std::size_t>(count));
  std::uint64_t rank = 0;
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t rank_delta = fr.varint();
    const std::uint64_t offset_delta = fr.varint();
    const std::uint64_t length = fr.varint();
    if (fr.failed) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) + " is cut short");
    }
    if (i == 0) {
      rank = rank_delta;
      offset = offset_delta;
    } else {
      if (rank_delta == 0) {
        return fail(error, fault::ArchiveFault::kDuplicateSite,
                    "index entries " + std::to_string(i - 1) + " and " +
                        std::to_string(i) + " both claim rank " +
                        std::to_string(rank));
      }
      rank += rank_delta;
      offset += offset_delta;
    }
    if (rank > static_cast<std::uint64_t>(std::numeric_limits<int>::max()) ||
        offset >= footer_offset || length > footer_offset - offset) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) +
                      " lies outside the block stream");
    }
    reader.index_.push_back({static_cast<int>(rank), offset, length});
  }
  if (fr.remaining() != 0) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "trailing bytes after the footer index");
  }
  // Contiguity: blocks tile the file exactly. A duplicated, dropped, or
  // spliced block cannot satisfy this against any footer.
  std::uint64_t expected = kHeaderSize;
  for (std::size_t i = 0; i < reader.index_.size(); ++i) {
    if (reader.index_[i].offset != expected) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) + " starts at offset " +
                      std::to_string(reader.index_[i].offset) +
                      ", expected " + std::to_string(expected));
    }
    expected += reader.index_[i].length;
  }
  if (expected != footer_offset) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "block stream ends at offset " + std::to_string(expected) +
                    ", footer begins at " + std::to_string(footer_offset));
  }

  reader.bytes_ = std::move(bytes);
  if (error != nullptr) *error = {};
  return reader;
}

std::optional<instrument::VisitLog> Reader::decode_entry(
    const IndexEntry& entry, Error* error) const {
  Error block_error;
  const auto frame =
      decode_block(bytes_, static_cast<std::size_t>(entry.offset),
                   &block_error);
  if (!frame) {
    if (error != nullptr) *error = block_error;
    return std::nullopt;
  }
  if (frame->type != BlockType::kSite || frame->total_size != entry.length) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kCorruptIndex,
                "block at offset " + std::to_string(entry.offset) +
                    " does not match its index entry"};
    }
    return std::nullopt;
  }
  auto log = decode_site_payload(frame->payload, error);
  if (log && log->rank != entry.rank) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kCorruptIndex,
                "block at offset " + std::to_string(entry.offset) +
                    " holds rank " + std::to_string(log->rank) +
                    ", index claims " + std::to_string(entry.rank)};
    }
    return std::nullopt;
  }
  return log;
}

std::optional<instrument::VisitLog> Reader::visit(int rank,
                                                  Error* error) const {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), rank,
      [](const IndexEntry& entry, int r) { return entry.rank < r; });
  if (it == index_.end() || it->rank != rank) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kNone,
                "rank " + std::to_string(rank) + " is not in the archive"};
    }
    return std::nullopt;
  }
  return decode_entry(*it, error);
}

std::optional<instrument::VisitLog> Reader::visit_at(std::size_t i,
                                                     Error* error) const {
  if (i >= index_.size()) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kNone, "index position out of range"};
    }
    return std::nullopt;
  }
  return decode_entry(index_[i], error);
}

bool Reader::for_each(
    const std::function<void(instrument::VisitLog&&)>& sink,
    Error* error) const {
  for (const IndexEntry& entry : index_) {
    auto log = decode_entry(entry, error);
    if (!log) return false;
    sink(std::move(*log));
  }
  if (error != nullptr) *error = {};
  return true;
}

std::optional<Reader::VerifyStats> Reader::verify(Error* error) const {
  VerifyStats stats;
  stats.file_bytes = bytes_.size();
  const bool ok = for_each(
      [&stats](instrument::VisitLog&& log) {
        ++stats.sites;
        stats.record_count += log.script_sets.size() + log.http_sets.size() +
                              log.reads.size() + log.requests.size() +
                              log.dom_mods.size() + log.includes.size();
      },
      error);
  if (!ok) return std::nullopt;
  return stats;
}

}  // namespace cg::store
