// Validating CGAR reader.
//
// open() verifies the envelope once — header and trailer magic, format
// version, footer CRC, and the full index-consistency argument: every index
// entry must start exactly where the previous block ended, ranks must be
// strictly increasing, and the last block must end at the footer. A
// spliced, duplicated, reordered, or truncated block stream cannot agree
// with any valid footer, so corruption is caught before a single record is
// decoded. Site blocks themselves are CRC-checked lazily, on the access
// that touches them — random access to one site out of 20,000 costs one
// block's decode, not a file scan.
//
// Every rejection carries a fault::ArchiveFault taxonomy class; no input —
// truncated, bit-flipped, or adversarial — crashes the reader (fuzzed in
// tests/fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "instrument/records.h"
#include "store/byte_sink.h"
#include "store/cgar.h"

namespace cg::store {

class Reader {
 public:
  /// Loads and validates `path`. Empty optional + taxonomy'd error on any
  /// problem with the envelope.
  static std::optional<Reader> open(const std::string& path,
                                    Error* error = nullptr);

  /// Same, over an in-memory archive image (tests, fuzzing).
  static std::optional<Reader> from_buffer(std::string bytes,
                                           Error* error = nullptr);

  /// Same, reading the image through a ByteSource (open() is this over a
  /// FileSource). Read failures surface as Error{kIoError}.
  static std::optional<Reader> from_source(ByteSource& source,
                                           Error* error = nullptr);

  // ---- provenance (footer) ----------------------------------------------
  int site_count() const { return static_cast<int>(index_.size()); }
  std::uint64_t corpus_seed() const { return info_.corpus_seed; }
  std::uint64_t fault_seed() const { return info_.fault_seed; }
  std::uint32_t schema_version() const { return info_.schema_version; }
  std::uint64_t file_size() const { return bytes_.size(); }
  const std::vector<IndexEntry>& index() const { return index_; }

  // ---- longitudinal provenance (footer extension; legacy archives read
  // as policy none / wave 0 / full) ---------------------------------------
  ArchivePolicy policy() const { return info_.policy; }
  ArchiveKind kind() const { return info_.kind; }
  std::uint32_t wave() const { return info_.wave; }
  std::uint64_t evolution_seed() const { return info_.evolution_seed; }
  const BaseProvenance& base() const { return info_.base; }
  /// Delta archives only: ranks whose visit logs are byte-identical to the
  /// base wave's — present in the archive's site set, absent from its
  /// block stream. Sorted ascending, disjoint from index() ranks.
  const std::vector<int>& inherited_ranks() const {
    return info_.inherited_ranks;
  }
  /// Logical site count: blocks plus inherited ranks. Equal to
  /// site_count() for full archives.
  int total_site_count() const {
    return site_count() + static_cast<int>(info_.inherited_ranks.size());
  }
  /// CRC32C of this archive's footer payload — what a delta diffed against
  /// this archive records as BaseProvenance::footer_crc.
  std::uint32_t footer_crc() const { return footer_crc_; }

  /// CRC-checked framed payload of `rank`'s block (a site payload in a
  /// full archive, an edit script in a delta archive). The view aliases
  /// the reader's buffer. Empty optional with error.code == kNone when the
  /// rank has no block here (absent, or inherited in a delta archive).
  std::optional<std::string_view> block_payload(int rank,
                                                Error* error = nullptr) const;

  /// Random access by site rank (binary search of the footer index). Empty
  /// optional with error.code == kNone when the rank simply is not in the
  /// archive; a taxonomy'd code when the block is corrupt. Delta archives
  /// fail kDeltaUnresolved — their records only exist relative to a base;
  /// open the chain through store::WaveChain instead.
  std::optional<instrument::VisitLog> visit(int rank,
                                            Error* error = nullptr) const;

  /// Decode by index position (0 <= i < site_count()).
  std::optional<instrument::VisitLog> visit_at(std::size_t i,
                                               Error* error = nullptr) const;

  /// Streams every site in rank order into `sink`. Stops and returns false
  /// on the first corrupt block (error filled); true when every block
  /// decoded. The sink may keep or drop the logs — the reader retains
  /// nothing.
  bool for_each(const std::function<void(instrument::VisitLog&&)>& sink,
                Error* error = nullptr) const;

  /// Full-archive validation: decodes every block. The cheap way to answer
  /// "is this artifact intact?" before hours of analysis trust it. Delta
  /// archives are checked structurally (frame, CRC, op-stream shape) —
  /// sites counts blocks + inherited ranks, record_count stays 0 because
  /// records only materialize against the base.
  struct VerifyStats {
    int sites = 0;
    std::uint64_t file_bytes = 0;
    std::uint64_t record_count = 0;  // total records across all channels
  };
  std::optional<VerifyStats> verify(Error* error = nullptr) const;

 private:
  Reader() = default;

  std::optional<instrument::VisitLog> decode_entry(const IndexEntry& entry,
                                                   Error* error) const;
  std::optional<BlockFrame> frame_entry(const IndexEntry& entry,
                                        Error* error) const;
  bool reject_unresolved_delta(Error* error) const;

  std::string bytes_;
  FooterInfo info_;
  std::vector<IndexEntry> index_;
  std::uint32_t footer_crc_ = 0;
};

}  // namespace cg::store
