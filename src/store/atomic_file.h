// Atomic small-file replacement for checkpoints and summaries.
//
// A checkpoint overwritten in place is a crash hazard: die mid-write and
// the very file resume depends on is half the old state, half the new.
// write_file_atomic renders to `<path>.tmp`, flushes, verifies stream
// health, and renames over `path` — on POSIX the rename is atomic, so
// `path` always holds either the complete old contents or the complete new
// contents. A crash between write and rename leaves a `<path>.tmp` orphan;
// loaders must ignore it (the rename never happened, so its contents were
// never promoted to truth).
#pragma once

#include <string>
#include <string_view>

#include "store/cgar.h"

namespace cg::store {

/// Suffix of the temporary used by write_file_atomic. Loaders treat a
/// leftover `<path>.tmp` as an interrupted write, never as data.
inline constexpr std::string_view kAtomicTmpSuffix = ".tmp";

/// Atomically replaces `path` with `contents`. False + Error{kIoError} on
/// any failure (the destination is left untouched; a partial .tmp may
/// remain and is removed on the next successful write).
bool write_file_atomic(const std::string& path, std::string_view contents,
                       Error* error = nullptr);

}  // namespace cg::store
