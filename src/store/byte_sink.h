// Byte-level I/O abstraction under the CGAR writer/reader.
//
// Every byte the store emits flows through a ByteSink, and every archive a
// reader loads comes through a ByteSource. The indirection buys two things:
//
//   1. Checked I/O everywhere: each operation returns an IoStatus carrying a
//      fault::IoFault taxonomy class — no more bare std::ofstream writes
//      whose failures surface as silently truncated files (cglint rule W1
//      mechanizes this for src/store/, src/crawler/, examples/).
//   2. Deterministic chaos: a FaultingSink wraps any sink and injects the
//      write-side fault taxonomy — ENOSPC, short writes, fsync loss,
//      silent bit flips — on a seeded per-op schedule (fault::IoFaultPlan),
//      which is what bench_chaos and the self-healing writer tests drive.
//
// Threading contract: a sink belongs to the writer's merge thread; nothing
// here is thread-safe, matching store::Writer's single-thread discipline.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace cg::store {

/// Outcome of one sink/source operation. `fault` is kNone on success;
/// `detail` names the operation and offset for diagnostics. [[nodiscard]]
/// on the type makes every by-value return — the ByteSink/ByteSource
/// virtuals included — a compiler error to drop silently; cglint rule W2
/// backs the same contract at call sites the compiler cannot see.
struct [[nodiscard]] IoStatus {
  fault::IoFault fault = fault::IoFault::kNone;
  std::string detail;

  bool ok() const { return fault == fault::IoFault::kNone; }
  std::string to_string() const {
    std::string out(fault::io_fault_name(fault));
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

/// Append-oriented byte sink with explicit durability and repair hooks.
/// truncate() and read_back() exist for the writer's self-healing: undoing
/// a partially-applied block append and scrub-verifying written bytes.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  virtual IoStatus write(std::string_view bytes) = 0;
  virtual IoStatus flush() = 0;
  /// Durability barrier: bytes accepted before a successful sync() survive
  /// a crash. Default: flush (in-memory sinks are trivially durable).
  virtual IoStatus sync() { return flush(); }
  /// Discards everything past `size` bytes. Never injected-faulted: it is
  /// the repair path, not the data path.
  virtual IoStatus truncate(std::uint64_t size) = 0;

  /// Scrub support: re-read `length` bytes at `offset` from the medium.
  virtual bool supports_read_back() const { return false; }
  virtual IoStatus read_back(std::uint64_t offset, std::size_t length,
                             std::string* out);
};

/// Whole-archive byte source for the reader side.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual IoStatus read_all(std::string* out) = 0;
  /// Name for error details (a path, "<buffer>", ...).
  virtual std::string name() const = 0;
};

/// File-backed sink. Checks stream state after every operation and maps
/// failures to kStreamError; truncate goes through the filesystem (close,
/// resize, reopen in append mode).
class FileSink final : public ByteSink {
 public:
  /// Opens `path` (truncating, or appending when `append`). Null +
  /// status{kStreamError} when the file cannot be opened.
  static std::unique_ptr<FileSink> open(const std::string& path, bool append,
                                        IoStatus* status = nullptr);

  IoStatus write(std::string_view bytes) override;
  IoStatus flush() override;
  IoStatus truncate(std::uint64_t size) override;
  bool supports_read_back() const override { return true; }
  IoStatus read_back(std::uint64_t offset, std::size_t length,
                     std::string* out) override;

 private:
  explicit FileSink(std::string path) : path_(std::move(path)) {}

  std::string path_;
  // cglint: allow(W1) — every operation on out_ checks stream state in
  // byte_sink.cpp and maps failures into the IoFault taxonomy.
  std::ofstream out_;
};

/// In-memory sink (tests, chaos harness reference runs). Fully supports
/// truncate/read_back; sync is a no-op.
class BufferSink final : public ByteSink {
 public:
  BufferSink() = default;

  IoStatus write(std::string_view bytes) override {
    buffer_.append(bytes);
    return {};
  }
  IoStatus flush() override { return {}; }
  IoStatus truncate(std::uint64_t size) override {
    if (size < buffer_.size()) buffer_.resize(static_cast<std::size_t>(size));
    return {};
  }
  bool supports_read_back() const override { return true; }
  IoStatus read_back(std::uint64_t offset, std::size_t length,
                     std::string* out) override;

  const std::string& bytes() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Wraps an externally-owned std::ostream (the legacy Writer constructor;
/// tests stream archives into std::ostringstream). No truncate/read_back —
/// a real write failure on this sink is therefore not self-healable, only
/// reportable.
class OstreamSink final : public ByteSink {
 public:
  explicit OstreamSink(std::ostream* out) : out_(out) {}

  IoStatus write(std::string_view bytes) override;
  IoStatus flush() override;
  IoStatus truncate(std::uint64_t size) override;

 private:
  std::ostream* out_;
};

/// Reads a whole file (reader side).
class FileSource final : public ByteSource {
 public:
  explicit FileSource(std::string path) : path_(std::move(path)) {}
  IoStatus read_all(std::string* out) override;
  std::string name() const override { return path_; }

 private:
  std::string path_;
};

/// In-memory source.
class BufferSource final : public ByteSource {
 public:
  explicit BufferSource(std::string bytes) : bytes_(std::move(bytes)) {}
  IoStatus read_all(std::string* out) override {
    *out = bytes_;
    return {};
  }
  std::string name() const override { return "<buffer>"; }

 private:
  std::string bytes_;
};

/// Deterministic fault-injecting sink: consults a fault::IoFaultPlan on
/// every write()/sync() and realizes the drawn class against the inner
/// sink. Injection semantics:
///
///   kNoSpace     write consumes nothing; the error is visible.
///   kShortWrite  a seeded prefix reaches the inner sink; error visible.
///   kBitFlip     the full buffer reaches the inner sink with one seeded
///                bit flipped; the write reports SUCCESS — only a
///                read-back scrub can catch it (the writer's scrub_writes).
///   kFsyncLost   sync() drops a seeded suffix of the bytes accepted since
///                the last successful sync (the fsyncgate failure mode) and
///                reports the error once.
///
/// Write-class draws on sync ops (and vice versa) are ignored, so the
/// injected-per-class counters (`io.injected.*` in `injected_metrics`, and
/// injected()) account exactly for the faults that were actually realized.
class FaultingSink final : public ByteSink {
 public:
  FaultingSink(std::unique_ptr<ByteSink> inner, fault::IoFaultPlan plan,
               obs::MetricsRegistry* injected_metrics = nullptr,
               std::uint64_t initial_size = 0, std::uint64_t first_op = 0)
      : inner_(std::move(inner)),
        plan_(plan),
        injected_metrics_(injected_metrics),
        op_(first_op),
        size_(initial_size),
        synced_(initial_size) {}

  IoStatus write(std::string_view bytes) override;
  IoStatus flush() override { return inner_->flush(); }
  IoStatus sync() override;
  IoStatus truncate(std::uint64_t size) override;
  bool supports_read_back() const override {
    return inner_->supports_read_back();
  }
  IoStatus read_back(std::uint64_t offset, std::size_t length,
                     std::string* out) override {
    return inner_->read_back(offset, length, out);
  }

  std::uint64_t ops() const { return op_; }
  std::int64_t injected(fault::IoFault cls) const {
    return injected_[static_cast<std::size_t>(cls)];
  }

 private:
  void count(fault::IoFault cls);

  std::unique_ptr<ByteSink> inner_;
  fault::IoFaultPlan plan_;
  obs::MetricsRegistry* injected_metrics_;
  std::uint64_t op_;
  std::uint64_t size_;    // logical bytes accepted by the inner sink
  std::uint64_t synced_;  // bytes durable as of the last successful sync
  std::array<std::int64_t, fault::kIoFaultCount> injected_{};
};

}  // namespace cg::store
