#include "store/writer.h"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <utility>

#include "store/record_codec.h"

namespace cg::store {
namespace {

void set_error(Error* error, fault::ArchiveFault code, std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
}

/// Append-style message builder (GCC 12 -Wrestrict, PR 105329).
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

/// Histogram bounds for the virtual I/O backoff clock (ms).
const std::vector<double>& io_backoff_bounds() {
  static const std::vector<double> bounds = {50, 100, 200, 400, 800, 1'600,
                                             3'200, 6'400};
  return bounds;
}

}  // namespace

Writer::Writer(std::ostream* out, WriterOptions options)
    : sink_(std::make_unique<OstreamSink>(out)), options_(options) {
  if (!append_bytes(encode_header(), "header")) dead_ = true;
}

Writer::Writer(std::unique_ptr<ByteSink> sink, WriterOptions options)
    : sink_(std::move(sink)), options_(options) {
  if (!append_bytes(encode_header(), "header")) dead_ = true;
}

Writer::Writer(std::unique_ptr<ByteSink> sink, WriterOptions options,
               ResumePrefix prefix)
    : sink_(std::move(sink)),
      options_(options),
      index_(std::move(prefix.index)),
      bytes_(prefix.bytes),
      synced_bytes_(prefix.bytes) {
  if (!index_.empty()) last_rank_ = index_.back().rank;
}

Writer::~Writer() {
  // Deliberately no auto-finish: an unfinished archive (no footer) is the
  // on-disk signature of an interrupted crawl, which resume() understands.
  // Finishing in a destructor would turn a crash-mid-crawl into a footer
  // claiming the truncated site set is complete.
}

std::unique_ptr<Writer> Writer::create(const std::string& path,
                                       WriterOptions options, Error* error) {
  IoStatus status;
  auto sink = FileSink::open(path, /*append=*/false, &status);
  if (sink == nullptr) {
    set_error(error, fault::ArchiveFault::kIoError, status.to_string());
    return nullptr;
  }
  auto writer =
      std::unique_ptr<Writer>(new Writer(std::move(sink), options));
  if (writer->dead_) {
    if (error != nullptr) *error = writer->last_io_error_;
    return nullptr;
  }
  return writer;
}

std::optional<Writer::ResumePrefix> Writer::walk_prefix(
    const std::string& path, int sites, Error* error) {
  FileSource source(path);
  std::string bytes;
  if (const IoStatus status = source.read_all(&bytes); !status.ok()) {
    set_error(error, fault::ArchiveFault::kIoError, status.to_string());
    return std::nullopt;
  }

  const std::string header = encode_header();
  if (bytes.size() < header.size() ||
      std::string_view(bytes).substr(0, header.size()) != header) {
    set_error(error, fault::ArchiveFault::kBadMagic,
              concat(path, " does not start with a CGAR v1 header"));
    return std::nullopt;
  }

  // CRC-walk the prefix the checkpoint accounted for, rebuilding the
  // writer's index. Footer blocks (a previously *finished* archive being
  // extended) are skipped, not counted.
  ResumePrefix prefix;
  prefix.index.reserve(static_cast<std::size_t>(sites < 0 ? 0 : sites));
  std::size_t offset = header.size();
  while (static_cast<int>(prefix.index.size()) < sites) {
    Error block_error;
    const auto frame = decode_block(bytes, offset, &block_error);
    if (!frame) {
      // Surface the precise damage class: a block that simply ran out of
      // bytes is kTruncated (crash tail — expected, resume's bread and
      // butter), but a checksum or structural failure *inside* the
      // checkpointed prefix means the checkpoint's promise is broken.
      const fault::ArchiveFault code =
          block_error.code == fault::ArchiveFault::kNone
              ? fault::ArchiveFault::kTruncated
              : block_error.code;
      set_error(error, code,
                concat(path, " holds only ",
                       std::to_string(prefix.index.size()),
                       " intact site blocks before offset ",
                       std::to_string(offset), ", checkpoint expects ",
                       std::to_string(sites), " (", block_error.to_string(),
                       ")"));
      return std::nullopt;
    }
    if (frame->type == BlockType::kSite) {
      const auto rank = peek_site_rank(frame->payload);
      if (!rank) {
        set_error(error, fault::ArchiveFault::kCorruptBlock,
                  concat("site block at offset ", std::to_string(offset),
                         " has an unreadable rank"));
        return std::nullopt;
      }
      prefix.index.push_back({*rank, offset, frame->total_size});
    }
    offset += frame->total_size;
  }

  // Everything after the checkpointed prefix — blocks written between the
  // checkpoint and the crash, torn or bit-flipped tails, or an old footer
  // — is discarded so the resumed crawl re-emits it deterministically.
  std::error_code ec;
  std::filesystem::resize_file(path, offset, ec);
  if (ec) {
    set_error(error, fault::ArchiveFault::kIoError,
              concat("cannot truncate ", path, ": ", ec.message()));
    return std::nullopt;
  }
  prefix.bytes = offset;
  return prefix;
}

std::unique_ptr<Writer> Writer::resume(const std::string& path,
                                       WriterOptions options, int sites,
                                       Error* error) {
  auto prefix = walk_prefix(path, sites, error);
  if (!prefix) return nullptr;
  IoStatus status;
  auto sink = FileSink::open(path, /*append=*/true, &status);
  if (sink == nullptr) {
    set_error(error, fault::ArchiveFault::kIoError, status.to_string());
    return nullptr;
  }
  return std::unique_ptr<Writer>(
      new Writer(std::move(sink), options, std::move(*prefix)));
}

void Writer::count_metric(std::string_view name, std::int64_t delta) {
  if (options_.metrics != nullptr) options_.metrics->add(name, delta);
}

bool Writer::run_io(std::string_view what,
                    const std::function<IoStatus()>& attempt) {
  if (dead_) return false;
  const int max_retries = std::max(options_.io.max_retries, 0);
  for (int try_index = 0;; ++try_index) {
    const IoStatus status = attempt();
    if (status.ok()) {
      if (try_index > 0) count_metric("io.recovered_ops");
      return true;
    }
    count_metric(concat("io.faults.", fault::io_fault_name(status.fault)));
    if (dead_ || try_index >= max_retries) {
      last_io_error_ = {
          fault::ArchiveFault::kIoError,
          concat(what, ": ", status.to_string(), " (",
                 std::to_string(try_index + 1), " attempts)")};
      return false;
    }
    // Exponential backoff on the virtual I/O clock — accounted, never
    // slept, so chaos runs stay fast and deterministic.
    const TimeMillis backoff =
        options_.io.backoff_base_ms
        * (TimeMillis{1} << std::min(try_index, 20));
    io_backoff_ms_ += backoff;
    count_metric("io.retries");
    if (options_.metrics != nullptr) {
      options_.metrics->observe("io.backoff_ms", io_backoff_bounds(),
                                static_cast<double>(backoff));
    }
  }
}

bool Writer::append_bytes(std::string_view bytes, std::string_view what) {
  const std::uint64_t start = bytes_;
  bool may_have_partial = false;
  const bool ok = run_io(what, [&]() -> IoStatus {
    if (may_have_partial) {
      // A prior try may have left a prefix (short write) or corrupted
      // bytes (scrub mismatch) on the medium: restore the block boundary
      // before retrying.
      if (IoStatus t = sink_->truncate(start); !t.ok()) return t;
    }
    may_have_partial = true;
    if (IoStatus s = sink_->write(bytes); !s.ok()) return s;
    if (options_.io.scrub_writes && sink_->supports_read_back()) {
      std::string echo;
      if (IoStatus r = sink_->read_back(start, bytes.size(), &echo);
          !r.ok()) {
        return r;
      }
      if (echo != bytes) {
        // The medium acknowledged the write but holds different bytes: a
        // silent flip, caught only because we scrubbed. Count it and
        // retry through the normal truncate-back path.
        count_metric("io.scrub_detected");
        return {fault::IoFault::kBitFlip,
                concat("scrub mismatch at offset ", std::to_string(start))};
      }
    }
    return {};
  });
  if (!ok) {
    // Permanent failure: restore the pre-block state so the archive stays
    // internally consistent (best effort — a sink without truncate keeps
    // the partial bytes, and finish() will still report the error).
    if (may_have_partial) (void)sink_->truncate(start);
    return false;
  }
  bytes_ += bytes.size();
  if (options_.io.buffer_unsynced) unsynced_.append(bytes);
  return true;
}

bool Writer::add(const instrument::VisitLog& log) {
  return append_site_block(log.rank, encode_site_block(log));
}

void Writer::note_rank(int rank) {
  if (!index_.empty() || !inherited_.empty()) {
    if (rank <= last_rank_) rank_order_violated_ = true;
  }
  last_rank_ = rank;
}

bool Writer::append_site_block(int rank, std::string&& block) {
  if (dead_) return false;
  note_rank(rank);
  const std::uint64_t offset = bytes_;
  if (!append_bytes(block, "site block")) return false;
  index_.push_back({rank, offset, block.size()});
  return true;
}

bool Writer::append_delta_block(int rank, std::string&& block) {
  if (dead_) return false;
  note_rank(rank);
  const std::uint64_t offset = bytes_;
  if (!append_bytes(block, "delta block")) return false;
  index_.push_back({rank, offset, block.size()});
  return true;
}

bool Writer::add_inherited(int rank) {
  if (dead_) return false;
  note_rank(rank);
  inherited_.push_back(rank);
  return true;
}

bool Writer::sync_for_checkpoint(Error* error) {
  if (dead_) {
    if (error != nullptr) *error = last_io_error_;
    return false;
  }
  // `tail_dirty` = the medium's tail no longer matches bytes_ (an injected
  // fsync loss tore it, or a heal rewrite was itself interrupted): the next
  // try must truncate back to the durable prefix and rewrite from the
  // in-memory tail buffer before syncing again.
  bool tail_dirty = false;
  const bool ok = run_io("sync", [&]() -> IoStatus {
    if (tail_dirty) {
      if (IoStatus t = sink_->truncate(synced_bytes_); !t.ok()) return t;
      if (IoStatus w = sink_->write(unsynced_); !w.ok()) return w;
      tail_dirty = false;
      count_metric("io.sync_heals");
    }
    if (IoStatus f = sink_->flush(); !f.ok()) return f;
    IoStatus s = sink_->sync();
    if (s.fault == fault::IoFault::kFsyncLost) {
      if (!options_.io.buffer_unsynced) {
        // The dropped tail was never buffered: the writer cannot restore
        // it, and appending at bytes_ would leave a hole. Unrecoverable.
        dead_ = true;
        return s;
      }
      tail_dirty = true;
    }
    return s;
  });
  if (!ok) {
    if (tail_dirty) {
      // The medium is desynced from bytes_ and could not be repaired:
      // further appends would land at wrong offsets.
      dead_ = true;
    }
    if (error != nullptr) *error = last_io_error_;
    return false;
  }
  synced_bytes_ = bytes_;
  unsynced_.clear();
  if (error != nullptr) *error = {};
  return true;
}

bool Writer::finish(Error* error) {
  if (finished_) return true;
  if (dead_) {
    if (error != nullptr) *error = last_io_error_;
    return false;
  }
  if (rank_order_violated_) {
    set_error(error, fault::ArchiveFault::kDuplicateSite,
              "site blocks were appended out of rank order");
    return false;
  }
  FooterInfo info;
  info.format_version = kFormatVersion;
  info.schema_version = instrument::kVisitLogSchemaVersion;
  info.corpus_seed = options_.corpus_seed;
  info.fault_seed = options_.fault_seed;
  info.policy = options_.policy;
  info.kind = options_.kind;
  info.wave = options_.wave;
  info.evolution_seed = options_.evolution_seed;
  if (options_.kind == ArchiveKind::kDelta) {
    info.base = options_.base;
    info.inherited_ranks = inherited_;
  }
  const std::uint64_t footer_offset = bytes_;
  if (!append_bytes(
          encode_block(BlockType::kFooter, encode_footer_payload(info, index_)),
          "footer") ||
      !append_bytes(encode_trailer(footer_offset), "trailer")) {
    if (error != nullptr) *error = last_io_error_;
    return false;
  }
  // Final durability barrier: the footer's promise of completeness only
  // counts once it survives a crash.
  if (!sync_for_checkpoint(error)) return false;
  finished_ = true;
  if (error != nullptr) *error = {};
  return true;
}

}  // namespace cg::store
