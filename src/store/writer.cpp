#include "store/writer.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <utility>

#include "store/record_codec.h"

namespace cg::store {
namespace {

void set_error(Error* error, fault::ArchiveFault code, std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
}

}  // namespace

Writer::Writer(std::ostream* out, WriterOptions options)
    : out_(out), options_(options) {
  write(encode_header());
}

Writer::Writer(std::unique_ptr<std::ostream> owned, WriterOptions options,
               std::vector<IndexEntry> index, std::uint64_t bytes)
    : owned_out_(std::move(owned)),
      out_(owned_out_.get()),
      options_(options),
      index_(std::move(index)),
      bytes_(bytes) {}

Writer::~Writer() {
  // Deliberately no auto-finish: an unfinished archive (no footer) is the
  // on-disk signature of an interrupted crawl, which resume() understands.
  // Finishing in a destructor would turn a crash-mid-crawl into a footer
  // claiming the truncated site set is complete.
}

std::unique_ptr<Writer> Writer::create(const std::string& path,
                                       WriterOptions options, Error* error) {
  auto out = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!*out) {
    set_error(error, fault::ArchiveFault::kIoError, "cannot create " + path);
    return nullptr;
  }
  const std::string header = encode_header();
  out->write(header.data(), static_cast<std::streamsize>(header.size()));
  return std::unique_ptr<Writer>(
      new Writer(std::move(out), options, {}, header.size()));
}

std::unique_ptr<Writer> Writer::resume(const std::string& path,
                                       WriterOptions options, int sites,
                                       Error* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, fault::ArchiveFault::kIoError, "cannot open " + path);
    return nullptr;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  const std::string header = encode_header();
  if (bytes.size() < header.size() ||
      std::string_view(bytes).substr(0, header.size()) != header) {
    set_error(error, fault::ArchiveFault::kBadMagic,
              path + " does not start with a CGAR v1 header");
    return nullptr;
  }

  // CRC-walk the prefix the checkpoint accounted for, rebuilding the
  // writer's index. Footer blocks (a previously *finished* archive being
  // extended) are skipped, not counted.
  std::vector<IndexEntry> index;
  index.reserve(static_cast<std::size_t>(sites < 0 ? 0 : sites));
  std::size_t offset = header.size();
  while (static_cast<int>(index.size()) < sites) {
    Error block_error;
    const auto frame = decode_block(bytes, offset, &block_error);
    if (!frame) {
      set_error(error, fault::ArchiveFault::kTruncated,
                path + " holds only " + std::to_string(index.size()) +
                    " intact site blocks before offset " +
                    std::to_string(offset) + ", checkpoint expects " +
                    std::to_string(sites) + " (" + block_error.to_string() +
                    ")");
      return nullptr;
    }
    if (frame->type == BlockType::kSite) {
      const auto rank = peek_site_rank(frame->payload);
      if (!rank) {
        set_error(error, fault::ArchiveFault::kCorruptBlock,
                  "site block at offset " + std::to_string(offset) +
                      " has an unreadable rank");
        return nullptr;
      }
      index.push_back({*rank, offset, frame->total_size});
    }
    offset += frame->total_size;
  }

  // Everything after the checkpointed prefix — blocks written between the
  // checkpoint and the crash, or an old footer — is discarded so the resumed
  // crawl re-emits it deterministically.
  std::error_code ec;
  std::filesystem::resize_file(path, offset, ec);
  if (ec) {
    set_error(error, fault::ArchiveFault::kIoError,
              "cannot truncate " + path + ": " + ec.message());
    return nullptr;
  }
  auto out = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::app);
  if (!*out) {
    set_error(error, fault::ArchiveFault::kIoError, "cannot reopen " + path);
    return nullptr;
  }
  return std::unique_ptr<Writer>(
      new Writer(std::move(out), options, std::move(index), offset));
}

void Writer::write(std::string_view bytes) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes_ += bytes.size();
}

void Writer::add(const instrument::VisitLog& log) {
  append_site_block(log.rank, encode_site_block(log));
}

void Writer::append_site_block(int rank, std::string&& block) {
  if (!index_.empty() && rank <= index_.back().rank) {
    rank_order_violated_ = true;
  }
  index_.push_back({rank, bytes_, block.size()});
  write(block);
}

bool Writer::finish(Error* error) {
  if (finished_) return true;
  if (rank_order_violated_) {
    set_error(error, fault::ArchiveFault::kDuplicateSite,
              "site blocks were appended out of rank order");
    return false;
  }
  FooterInfo info;
  info.format_version = kFormatVersion;
  info.schema_version = instrument::kVisitLogSchemaVersion;
  info.corpus_seed = options_.corpus_seed;
  info.fault_seed = options_.fault_seed;
  const std::uint64_t footer_offset = bytes_;
  write(encode_block(BlockType::kFooter, encode_footer_payload(info, index_)));
  write(encode_trailer(footer_offset));
  out_->flush();
  if (!*out_) {
    set_error(error, fault::ArchiveFault::kIoError,
              "stream failed while finalising the archive");
    return false;
  }
  finished_ = true;
  if (error != nullptr) *error = {};
  return true;
}

}  // namespace cg::store
