#include "store/byte_sink.h"

#include <filesystem>
#include <iterator>
#include <ostream>
#include <utility>

namespace cg::store {
namespace {

/// Append-style message builder (GCC 12 -Wrestrict, PR 105329).
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

IoStatus stream_error(std::string detail) {
  return {fault::IoFault::kStreamError, std::move(detail)};
}

}  // namespace

IoStatus ByteSink::read_back(std::uint64_t offset, std::size_t length,
                             std::string* out) {
  (void)offset;
  (void)length;
  (void)out;
  return stream_error("sink does not support read_back");
}

// ---- FileSink ------------------------------------------------------------

std::unique_ptr<FileSink> FileSink::open(const std::string& path, bool append,
                                         IoStatus* status) {
  auto sink = std::unique_ptr<FileSink>(new FileSink(path));
  const auto mode =
      std::ios::binary | (append ? std::ios::app : std::ios::trunc);
  sink->out_.open(path, mode);
  if (!sink->out_) {
    if (status != nullptr) *status = stream_error(concat("cannot open ", path));
    return nullptr;
  }
  if (status != nullptr) *status = {};
  return sink;
}

IoStatus FileSink::write(std::string_view bytes) {
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out_) {
    // Clear the stream so a later truncate-and-retry can proceed; how much
    // of the buffer landed is unknown, which is why the writer repairs by
    // truncating back to the last known-good offset.
    out_.clear();
    return stream_error(concat("write of ", std::to_string(bytes.size()),
                               " bytes failed on ", path_));
  }
  return {};
}

IoStatus FileSink::flush() {
  out_.flush();
  if (!out_) {
    out_.clear();
    return stream_error(concat("flush failed on ", path_));
  }
  return {};
}

IoStatus FileSink::truncate(std::uint64_t size) {
  out_.flush();
  out_.close();
  std::error_code ec;
  std::filesystem::resize_file(path_, size, ec);
  if (ec) {
    return stream_error(
        concat("cannot truncate ", path_, ": ", ec.message()));
  }
  out_.clear();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    return stream_error(concat("cannot reopen ", path_, " after truncate"));
  }
  return {};
}

IoStatus FileSink::read_back(std::uint64_t offset, std::size_t length,
                             std::string* out) {
  // The write stream buffers; scrub must see what a reader would, so flush
  // first and read through an independent descriptor.
  if (IoStatus flushed = flush(); !flushed.ok()) return flushed;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return stream_error(concat("cannot reopen ", path_, " for scrub"));
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(length);
  in.read(out->data(), static_cast<std::streamsize>(length));
  if (in.gcount() != static_cast<std::streamsize>(length)) {
    return stream_error(concat("scrub read of ", std::to_string(length),
                               " bytes at offset ", std::to_string(offset),
                               " came up short on ", path_));
  }
  return {};
}

// ---- BufferSink ----------------------------------------------------------

IoStatus BufferSink::read_back(std::uint64_t offset, std::size_t length,
                               std::string* out) {
  if (offset + length > buffer_.size()) {
    return stream_error("scrub read past the end of the buffer");
  }
  out->assign(buffer_, static_cast<std::size_t>(offset), length);
  return {};
}

// ---- OstreamSink ---------------------------------------------------------

IoStatus OstreamSink::write(std::string_view bytes) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!*out_) {
    out_->clear();
    return stream_error(concat("write of ", std::to_string(bytes.size()),
                               " bytes failed on wrapped ostream"));
  }
  return {};
}

IoStatus OstreamSink::flush() {
  out_->flush();
  if (!*out_) {
    out_->clear();
    return stream_error("flush failed on wrapped ostream");
  }
  return {};
}

IoStatus OstreamSink::truncate(std::uint64_t size) {
  (void)size;
  return stream_error("wrapped ostream cannot truncate");
}

// ---- FileSource ----------------------------------------------------------

IoStatus FileSource::read_all(std::string* out) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return stream_error(concat("cannot open ", path_));
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) return stream_error(concat("read failed: ", path_));
  return {};
}

// ---- FaultingSink --------------------------------------------------------

void FaultingSink::count(fault::IoFault cls) {
  ++injected_[static_cast<std::size_t>(cls)];
  if (injected_metrics_ != nullptr) {
    injected_metrics_->add(concat("io.injected.", fault::io_fault_name(cls)));
  }
}

IoStatus FaultingSink::write(std::string_view bytes) {
  const fault::IoFaultDecision decision = plan_.decide(op_++);
  switch (decision.cls) {
    case fault::IoFault::kNoSpace: {
      count(decision.cls);
      return {fault::IoFault::kNoSpace,
              concat("injected ENOSPC at offset ", std::to_string(size_))};
    }
    case fault::IoFault::kShortWrite: {
      // A seeded strict prefix lands; the error is visible to the caller.
      const auto kept = static_cast<std::size_t>(
          decision.cut * static_cast<double>(bytes.size()));
      const std::string_view prefix =
          bytes.substr(0, kept < bytes.size() ? kept : bytes.size() - 1);
      if (IoStatus inner = inner_->write(prefix); !inner.ok()) return inner;
      size_ += prefix.size();
      count(decision.cls);
      return {fault::IoFault::kShortWrite,
              concat("injected short write: ", std::to_string(prefix.size()),
                     " of ", std::to_string(bytes.size()), " bytes")};
    }
    case fault::IoFault::kBitFlip: {
      // The whole buffer lands with one bit flipped — and the write
      // REPORTS SUCCESS. Only a read-back scrub catches this class.
      std::string corrupted(bytes);
      const std::uint64_t bit = decision.flip % (corrupted.size() * 8);
      corrupted[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<char>(1u << (bit % 8));
      if (IoStatus inner = inner_->write(corrupted); !inner.ok()) return inner;
      size_ += corrupted.size();
      count(decision.cls);
      return {};
    }
    case fault::IoFault::kNone:
    case fault::IoFault::kStreamError:  // real errors come from inner_, not draws
    case fault::IoFault::kFsyncLost:    // applies to sync ops only
    case fault::IoFault::kTornTail:     // applies to crash replay only
      break;
  }
  IoStatus inner = inner_->write(bytes);
  if (inner.ok()) size_ += bytes.size();
  return inner;
}

IoStatus FaultingSink::sync() {
  const fault::IoFaultDecision decision = plan_.decide(op_++);
  if (decision.cls == fault::IoFault::kFsyncLost && size_ > synced_) {
    // fsyncgate semantics: the sync fails AND a suffix of the unsynced
    // bytes is gone from the medium. A seeded fraction of the tail
    // survives; everything after it is torn away.
    const std::uint64_t tail = size_ - synced_;
    const std::uint64_t keep =
        synced_ + static_cast<std::uint64_t>(
                      decision.cut * static_cast<double>(tail));
    if (IoStatus inner = inner_->truncate(keep); !inner.ok()) return inner;
    size_ = keep;
    count(decision.cls);
    return {fault::IoFault::kFsyncLost,
            concat("injected fsync loss: medium rolled back to offset ",
                   std::to_string(keep))};
  }
  IoStatus inner = inner_->sync();
  if (inner.ok()) synced_ = size_;
  return inner;
}

IoStatus FaultingSink::truncate(std::uint64_t size) {
  IoStatus inner = inner_->truncate(size);
  if (inner.ok()) {
    size_ = size;
    if (synced_ > size) synced_ = size;
  }
  return inner;
}

}  // namespace cg::store
