#include "store/record_codec.h"

#include <limits>
#include <map>
#include <vector>

#include "crypto/crc32c.h"

namespace cg::store {
namespace {

using instrument::VisitLog;

/// Block-local string interner. Table order is first-use order — a pure
/// function of the record stream, which the determinism guarantee rests on.
class StringTable {
 public:
  std::uint64_t intern(const std::string& s) {
    const auto [it, inserted] = ids_.emplace(s, strings_.size());
    if (inserted) strings_.push_back(&it->first);
    return it->second;
  }

  void encode(std::string& out) const {
    put_varint(out, strings_.size());
    for (const std::string* s : strings_) {
      put_varint(out, s->size());
      out += *s;
    }
  }

 private:
  std::map<std::string, std::uint64_t> ids_;
  std::vector<const std::string*> strings_;
};

/// Packs up to 8 bools into one byte.
std::uint8_t pack_flags(std::initializer_list<bool> flags) {
  std::uint8_t out = 0;
  int bit = 0;
  for (const bool flag : flags) {
    if (flag) out |= static_cast<std::uint8_t>(1u << bit);
    ++bit;
  }
  return out;
}

// ---- body encoding -------------------------------------------------------
// Two passes share one routine: pass 1 interns every string (building the
// table), pass 2 emits the body against the now-frozen table. Running the
// same code twice guarantees the table order matches the body's references.

struct Encoder {
  StringTable& table;
  std::string* out;  // null during the interning pass

  void str(const std::string& s) {
    const std::uint64_t id = table.intern(s);
    if (out != nullptr) put_varint(*out, id);
  }
  void u64(std::uint64_t v) {
    if (out != nullptr) put_varint(*out, v);
  }
  void i64(std::int64_t v) {
    if (out != nullptr) put_zigzag(*out, v);
  }
  void byte(std::uint8_t v) {
    if (out != nullptr) out->push_back(static_cast<char>(v));
  }

  void body(const VisitLog& log) {
    str(log.site_host);
    str(log.site);
    byte(pack_flags({log.has_cookie_logs, log.has_request_logs}));
    u64(static_cast<std::uint64_t>(log.failure));
    u64(static_cast<std::uint64_t>(log.attempts));
    u64(static_cast<std::uint64_t>(log.pages_visited));
    i64(log.landing_timings.dom_interactive);
    i64(log.landing_timings.dom_content_loaded);
    i64(log.landing_timings.load_event);

    u64(log.script_sets.size());
    for (const auto& r : log.script_sets) {
      str(r.cookie_name);
      str(r.value);
      str(r.setter_url);
      str(r.setter_domain);
      str(r.true_domain);
      byte(static_cast<std::uint8_t>(r.api));
      byte(static_cast<std::uint8_t>(r.change_type));
      byte(static_cast<std::uint8_t>(r.category));
      byte(static_cast<std::uint8_t>(r.inclusion));
      byte(pack_flags({r.value_changed, r.expires_changed, r.domain_changed,
                       r.path_changed}));
      i64(r.prev_expires);
      i64(r.new_expires);
      i64(r.time);
    }

    u64(log.http_sets.size());
    for (const auto& r : log.http_sets) {
      str(r.cookie_name);
      str(r.value);
      str(r.response_host);
      str(r.setter_domain);
      byte(pack_flags({r.http_only, r.first_party}));
      byte(static_cast<std::uint8_t>(r.change_type));
      i64(r.time);
    }

    u64(log.reads.size());
    for (const auto& r : log.reads) {
      str(r.reader_url);
      str(r.reader_domain);
      byte(static_cast<std::uint8_t>(r.api));
      u64(static_cast<std::uint64_t>(r.cookies_returned));
      i64(r.time);
    }

    u64(log.requests.size());
    for (const auto& r : log.requests) {
      str(r.url);
      str(r.host);
      str(r.dest_domain);
      str(r.initiator_url);
      str(r.initiator_domain);
      byte(static_cast<std::uint8_t>(r.destination));
      i64(r.time);
    }

    u64(log.dom_mods.size());
    for (const auto& r : log.dom_mods) {
      str(r.modifier_domain);
      str(r.target_domain);
    }

    u64(log.includes.size());
    for (const auto& r : log.includes) {
      str(r.script_id);
      str(r.url);
      str(r.domain);
      byte(static_cast<std::uint8_t>(r.category));
      byte(static_cast<std::uint8_t>(r.inclusion));
      byte(pack_flags({r.is_inline}));
    }
  }
};

// ---- body decoding -------------------------------------------------------

struct Decoder {
  ByteReader reader;
  const std::vector<std::string_view>& table;
  bool corrupt = false;

  std::string str() {
    const std::uint64_t id = reader.varint();
    if (reader.failed || id >= table.size()) {
      corrupt = true;
      return {};
    }
    return std::string(table[id]);
  }
  /// A count that must leave at least `min_bytes_each` per element — a
  /// flipped length byte cannot make the decoder allocate gigabytes.
  std::uint64_t count(std::size_t min_bytes_each) {
    const std::uint64_t n = reader.varint();
    if (reader.failed ||
        n > reader.remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
      corrupt = true;
      return 0;
    }
    return n;
  }
  std::uint8_t byte() {
    const auto view = reader.bytes(1);
    if (reader.failed) {
      corrupt = true;
      return 0;
    }
    return static_cast<std::uint8_t>(view[0]);
  }
  /// Enum decoded with range validation.
  template <typename E>
  E enum_byte(int limit) {
    const std::uint8_t raw = byte();
    if (raw >= limit) corrupt = true;
    return static_cast<E>(raw);
  }
  std::int64_t i64() {
    const std::int64_t v = reader.zigzag();
    if (reader.failed) corrupt = true;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t v = reader.varint();
    if (reader.failed) corrupt = true;
    return v;
  }
  bool bad() const { return corrupt || reader.failed; }
};

constexpr int kCookieSourceLimit = 3;   // cookies::CookieSource
constexpr int kChangeTypeLimit = 5;     // cookies::CookieChange::Type
constexpr int kCategoryLimit = 11;      // script::Category
constexpr int kInclusionLimit = 2;      // script::Inclusion
constexpr int kDestinationLimit = 6;    // net::RequestDestination

bool decode_body(Decoder& d, VisitLog& log) {
  log.site_host = d.str();
  log.site = d.str();
  const std::uint8_t flags = d.byte();
  log.has_cookie_logs = (flags & 1) != 0;
  log.has_request_logs = (flags & 2) != 0;
  const std::uint64_t failure = d.u64();
  if (failure >= static_cast<std::uint64_t>(fault::kFailureClassCount)) {
    return false;
  }
  log.failure = static_cast<fault::FailureClass>(failure);
  log.attempts = static_cast<int>(d.u64());
  log.pages_visited = static_cast<int>(d.u64());
  log.landing_timings.dom_interactive = d.i64();
  log.landing_timings.dom_content_loaded = d.i64();
  log.landing_timings.load_event = d.i64();
  if (d.bad()) return false;

  const std::uint64_t script_sets = d.count(13);
  for (std::uint64_t i = 0; i < script_sets && !d.bad(); ++i) {
    instrument::ScriptCookieSetRecord r;
    r.cookie_name = d.str();
    r.value = d.str();
    r.setter_url = d.str();
    r.setter_domain = d.str();
    r.true_domain = d.str();
    r.api = d.enum_byte<cookies::CookieSource>(kCookieSourceLimit);
    r.change_type =
        d.enum_byte<cookies::CookieChange::Type>(kChangeTypeLimit);
    r.category = d.enum_byte<script::Category>(kCategoryLimit);
    r.inclusion = d.enum_byte<script::Inclusion>(kInclusionLimit);
    const std::uint8_t diff = d.byte();
    r.value_changed = (diff & 1) != 0;
    r.expires_changed = (diff & 2) != 0;
    r.domain_changed = (diff & 4) != 0;
    r.path_changed = (diff & 8) != 0;
    r.prev_expires = d.i64();
    r.new_expires = d.i64();
    r.time = d.i64();
    log.script_sets.push_back(std::move(r));
  }

  const std::uint64_t http_sets = d.count(7);
  for (std::uint64_t i = 0; i < http_sets && !d.bad(); ++i) {
    instrument::HttpCookieSetRecord r;
    r.cookie_name = d.str();
    r.value = d.str();
    r.response_host = d.str();
    r.setter_domain = d.str();
    const std::uint8_t flag = d.byte();
    r.http_only = (flag & 1) != 0;
    r.first_party = (flag & 2) != 0;
    r.change_type =
        d.enum_byte<cookies::CookieChange::Type>(kChangeTypeLimit);
    r.time = d.i64();
    log.http_sets.push_back(std::move(r));
  }

  const std::uint64_t reads = d.count(5);
  for (std::uint64_t i = 0; i < reads && !d.bad(); ++i) {
    instrument::CookieReadRecord r;
    r.reader_url = d.str();
    r.reader_domain = d.str();
    r.api = d.enum_byte<cookies::CookieSource>(kCookieSourceLimit);
    r.cookies_returned = static_cast<int>(d.u64());
    r.time = d.i64();
    log.reads.push_back(std::move(r));
  }

  const std::uint64_t requests = d.count(7);
  for (std::uint64_t i = 0; i < requests && !d.bad(); ++i) {
    instrument::RequestRecord r;
    r.url = d.str();
    r.host = d.str();
    r.dest_domain = d.str();
    r.initiator_url = d.str();
    r.initiator_domain = d.str();
    r.destination =
        d.enum_byte<net::RequestDestination>(kDestinationLimit);
    r.time = d.i64();
    log.requests.push_back(std::move(r));
  }

  const std::uint64_t dom_mods = d.count(2);
  for (std::uint64_t i = 0; i < dom_mods && !d.bad(); ++i) {
    instrument::DomModRecord r;
    r.modifier_domain = d.str();
    r.target_domain = d.str();
    log.dom_mods.push_back(std::move(r));
  }

  const std::uint64_t includes = d.count(6);
  for (std::uint64_t i = 0; i < includes && !d.bad(); ++i) {
    instrument::ScriptIncludeRecord r;
    r.script_id = d.str();
    r.url = d.str();
    r.domain = d.str();
    r.category = d.enum_byte<script::Category>(kCategoryLimit);
    r.inclusion = d.enum_byte<script::Inclusion>(kInclusionLimit);
    r.is_inline = (d.byte() & 1) != 0;
    log.includes.push_back(std::move(r));
  }

  // The payload must end exactly where the body does — trailing bytes mean
  // the block length lied.
  return !d.bad() && d.reader.remaining() == 0;
}

}  // namespace

std::string encode_site_payload(const VisitLog& log) {
  StringTable table;
  Encoder interner{table, nullptr};
  interner.body(log);  // pass 1: populate the table

  std::string out;
  put_varint(out, static_cast<std::uint64_t>(log.rank));
  table.encode(out);
  Encoder emitter{table, &out};
  emitter.body(log);  // pass 2: emit against the frozen table
  return out;
}

std::string encode_site_block(const VisitLog& log) {
  return encode_block(BlockType::kSite, encode_site_payload(log));
}

std::optional<int> peek_site_rank(std::string_view payload) {
  ByteReader reader(payload);
  const std::uint64_t rank = reader.varint();
  if (reader.failed || rank > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(rank);
}

std::optional<instrument::VisitLog> decode_site_payload(
    std::string_view payload, Error* error) {
  const auto fail = [error](std::string detail) -> std::optional<VisitLog> {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kCorruptBlock, std::move(detail)};
    }
    return std::nullopt;
  };

  ByteReader reader(payload);
  const std::uint64_t rank = reader.varint();
  if (reader.failed || rank > std::numeric_limits<int>::max()) {
    return fail("unreadable site rank");
  }

  // String table. Each entry costs at least one length byte, so the count
  // is capped by the remaining payload size before anything is allocated.
  const std::uint64_t string_count = reader.varint();
  if (reader.failed || string_count > reader.remaining()) {
    return fail("string table count exceeds payload");
  }
  std::vector<std::string_view> table;
  table.reserve(static_cast<std::size_t>(string_count));
  for (std::uint64_t i = 0; i < string_count; ++i) {
    const std::uint64_t len = reader.varint();
    if (reader.failed || len > reader.remaining()) {
      return fail("string table entry overruns payload");
    }
    table.push_back(reader.bytes(static_cast<std::size_t>(len)));
  }

  VisitLog log;
  log.rank = static_cast<int>(rank);
  Decoder decoder{reader, table};
  if (!decode_body(decoder, log)) {
    return fail("record body fails structural decode");
  }
  if (error != nullptr) *error = {};
  return log;
}

}  // namespace cg::store
