#include "store/cgar.h"

#include "crypto/crc32c.h"

namespace cg::store {

std::string encode_block(BlockType type, std::string_view payload) {
  std::string out;
  out.push_back(static_cast<char>(type));
  put_varint(out, payload.size());
  put_u32le(out, crypto::crc32c(payload));
  out += payload;
  return out;
}

std::string encode_footer_payload(const FooterInfo& info,
                                  const std::vector<IndexEntry>& index) {
  std::string out;
  out.push_back(static_cast<char>(info.format_version));
  put_varint(out, info.schema_version);
  put_varint(out, info.corpus_seed);
  put_varint(out, info.fault_seed);
  put_varint(out, index.size());
  std::uint64_t prev_rank = 0;
  std::uint64_t prev_offset = 0;
  bool first = true;
  for (const IndexEntry& entry : index) {
    const std::uint64_t rank = static_cast<std::uint64_t>(entry.rank);
    if (first) {
      put_varint(out, rank);
      put_varint(out, entry.offset);
      first = false;
    } else {
      // Ranks and offsets are strictly increasing in a valid archive, so
      // deltas are small and nonnegative; a reader treats wrap-around as
      // corruption.
      put_varint(out, rank - prev_rank);
      put_varint(out, entry.offset - prev_offset);
    }
    put_varint(out, entry.length);
    prev_rank = rank;
    prev_offset = entry.offset;
  }

  // Footer extension (longitudinal provenance). Always written by this
  // writer; a legacy footer that stops at the index decodes as policy
  // none / wave 0 / full.
  put_varint(out, kFooterExtensionVersion);
  out.push_back(static_cast<char>(info.policy));
  out.push_back(static_cast<char>(info.kind));
  put_varint(out, info.wave);
  put_varint(out, info.evolution_seed);
  if (info.kind == ArchiveKind::kDelta) {
    put_varint(out, info.base.corpus_seed);
    put_varint(out, info.base.fault_seed);
    put_varint(out, info.base.evolution_seed);
    out.push_back(static_cast<char>(info.base.policy));
    put_varint(out, info.base.wave);
    put_varint(out, info.base.site_count);
    put_u32le(out, info.base.footer_crc);
    put_varint(out, info.inherited_ranks.size());
    std::uint64_t prev_inherited = 0;
    for (std::size_t i = 0; i < info.inherited_ranks.size(); ++i) {
      const std::uint64_t r =
          static_cast<std::uint64_t>(info.inherited_ranks[i]);
      put_varint(out, i == 0 ? r : r - prev_inherited);
      prev_inherited = r;
    }
  }
  return out;
}

std::optional<BlockFrame> decode_block(std::string_view file,
                                       std::size_t offset, Error* error) {
  const auto fail = [error](fault::ArchiveFault code,
                            std::string detail) -> std::optional<BlockFrame> {
    if (error != nullptr) *error = {code, std::move(detail)};
    return std::nullopt;
  };
  if (offset >= file.size()) {
    return fail(fault::ArchiveFault::kTruncated,
                "block offset " + std::to_string(offset) + " past end");
  }
  ByteReader reader(file.substr(offset));
  const auto type_byte = reader.bytes(1);
  const std::uint64_t payload_len = reader.varint();
  const std::uint32_t crc = reader.u32le();
  if (reader.failed) {
    return fail(fault::ArchiveFault::kTruncated,
                "block frame at offset " + std::to_string(offset) +
                    " is cut short");
  }
  const std::uint8_t type = static_cast<std::uint8_t>(type_byte[0]);
  if (type != static_cast<std::uint8_t>(BlockType::kSite) &&
      type != static_cast<std::uint8_t>(BlockType::kFooter) &&
      type != static_cast<std::uint8_t>(BlockType::kDelta)) {
    return fail(fault::ArchiveFault::kCorruptBlock,
                "unknown block type " + std::to_string(type) + " at offset " +
                    std::to_string(offset));
  }
  if (payload_len > reader.remaining()) {
    return fail(fault::ArchiveFault::kTruncated,
                "block at offset " + std::to_string(offset) + " declares " +
                    std::to_string(payload_len) + " payload bytes, " +
                    std::to_string(reader.remaining()) + " remain");
  }
  const std::string_view payload =
      reader.bytes(static_cast<std::size_t>(payload_len));
  if (crypto::crc32c(payload) != crc) {
    return fail(fault::ArchiveFault::kChecksumMismatch,
                "block at offset " + std::to_string(offset) +
                    " fails its CRC32C");
  }
  BlockFrame frame;
  frame.type = static_cast<BlockType>(type);
  frame.payload = payload;
  frame.total_size =
      static_cast<std::size_t>(reader.cursor - (file.data() + offset));
  if (error != nullptr) *error = {};
  return frame;
}

}  // namespace cg::store
