#include "store/atomic_file.h"

#include <filesystem>
#include <fstream>

namespace cg::store {
namespace {

void set_error(Error* error, std::string detail) {
  if (error != nullptr) *error = {fault::ArchiveFault::kIoError,
                                  std::move(detail)};
}

/// Append-style message builder (GCC 12 -Wrestrict, PR 105329).
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view contents,
                       Error* error) {
  std::string tmp = path;
  tmp += kAtomicTmpSuffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, concat("cannot create ", tmp));
      return false;
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      set_error(error, concat("write to ", tmp, " failed"));
      return false;
    }
  }
  std::error_code rename_ec;
  std::filesystem::rename(tmp, path, rename_ec);
  if (rename_ec) {
    const std::string message = rename_ec.message();
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    set_error(error,
              concat("cannot rename ", tmp, " over ", path, ": ", message));
    return false;
  }
  if (error != nullptr) *error = {};
  return true;
}

}  // namespace cg::store
