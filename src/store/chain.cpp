#include "store/chain.h"

#include <algorithm>
#include <utility>

#include "store/delta_codec.h"
#include "store/record_codec.h"

namespace cg::store {
namespace {

void set_error(Error* error, fault::ArchiveFault code, std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
}

bool contains(const std::vector<int>& sorted, int rank) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), rank);
  return it != sorted.end() && *it == rank;
}

/// The mode byte of a delta payload (after the rank varint), or nullopt on
/// a payload too damaged to carry one.
std::optional<std::uint8_t> delta_mode(std::string_view payload) {
  ByteReader reader(payload);
  (void)reader.varint();
  const auto mode = reader.bytes(1);
  if (reader.failed) return std::nullopt;
  return static_cast<std::uint8_t>(mode[0]);
}

}  // namespace

std::optional<WaveChain> WaveChain::link(std::vector<const Reader*> archives,
                                         Error* error) {
  if (archives.empty()) {
    set_error(error, fault::ArchiveFault::kCorruptIndex, "empty wave chain");
    return std::nullopt;
  }
  if (archives.front()->kind() != ArchiveKind::kFull) {
    set_error(error, fault::ArchiveFault::kDeltaUnresolved,
              "wave chain must start with a full archive, got a delta "
              "(wave " +
                  std::to_string(archives.front()->wave()) + ")");
    return std::nullopt;
  }

  WaveChain chain;
  chain.ranks_.reserve(archives.size());
  for (std::size_t w = 0; w < archives.size(); ++w) {
    const Reader& a = *archives[w];
    std::vector<int> ranks;
    ranks.reserve(a.index().size() + a.inherited_ranks().size());
    for (const IndexEntry& entry : a.index()) ranks.push_back(entry.rank);
    if (w > 0) {
      const Reader& prev = *archives[w - 1];
      const auto mismatch = [&](std::string_view field) {
        set_error(error, fault::ArchiveFault::kBaseMismatch,
                  "chain position " + std::to_string(w) + ": recorded base " +
                      std::string(field) +
                      " disagrees with the preceding archive");
        return std::nullopt;
      };
      if (a.kind() != ArchiveKind::kDelta) {
        set_error(error, fault::ArchiveFault::kBaseMismatch,
                  "chain position " + std::to_string(w) +
                      " is a full archive — chains are one full base plus "
                      "deltas");
        return std::nullopt;
      }
      // The crawl weather a chain holds constant: one corpus, one fault
      // schedule, one policy, one evolution seed, monotonically later
      // waves. The footer CRC then pins the exact base artifact.
      if (a.corpus_seed() != prev.corpus_seed() ||
          a.base().corpus_seed != prev.corpus_seed()) {
        return mismatch("corpus seed");
      }
      if (a.fault_seed() != prev.fault_seed() ||
          a.base().fault_seed != prev.fault_seed()) {
        return mismatch("fault seed");
      }
      if (a.policy() != prev.policy() || a.base().policy != prev.policy()) {
        return mismatch("policy");
      }
      if (a.base().evolution_seed != prev.evolution_seed()) {
        return mismatch("evolution seed");
      }
      if (a.wave() <= prev.wave() || a.base().wave != prev.wave()) {
        return mismatch("wave");
      }
      if (a.base().site_count !=
          static_cast<std::uint32_t>(prev.total_site_count())) {
        return mismatch("site count");
      }
      if (a.base().footer_crc != prev.footer_crc()) {
        return mismatch("footer CRC");
      }
      for (const int rank : a.inherited_ranks()) {
        if (!contains(chain.ranks_[w - 1], rank)) {
          set_error(error, fault::ArchiveFault::kBaseMismatch,
                    "wave " + std::to_string(a.wave()) + " inherits rank " +
                        std::to_string(rank) +
                        ", which the base wave does not hold");
          return std::nullopt;
        }
        ranks.push_back(rank);
      }
      std::sort(ranks.begin(), ranks.end());
    }
    chain.ranks_.push_back(std::move(ranks));
  }
  chain.archives_ = std::move(archives);
  if (error != nullptr) *error = {};
  return chain;
}

std::optional<std::string> WaveChain::payload_at(int rank, int wave,
                                                 Error* error) const {
  if (wave < 0 || wave >= waves()) {
    set_error(error, fault::ArchiveFault::kNone,
              "wave index out of range");
    return std::nullopt;
  }
  const Reader& a = *archives_[static_cast<std::size_t>(wave)];
  Error local;
  const auto payload = a.block_payload(rank, &local);
  if (!payload) {
    if (!local.ok()) {
      if (error != nullptr) *error = local;
      return std::nullopt;
    }
    // No block: inherited (resolve one wave back) or simply absent.
    if (wave > 0 && contains(a.inherited_ranks(), rank)) {
      return payload_at(rank, wave - 1, error);
    }
    set_error(error, fault::ArchiveFault::kNone,
              "rank " + std::to_string(rank) + " is not in wave " +
                  std::to_string(a.wave()));
    return std::nullopt;
  }
  if (a.kind() == ArchiveKind::kFull) {
    if (error != nullptr) *error = {};
    return std::string(*payload);
  }
  const auto mode = delta_mode(*payload);
  if (!mode) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload header is cut short");
    return std::nullopt;
  }
  std::string base_payload;
  if (*mode == 0) {  // diff: materialize the base wave's bytes first
    Error base_error;
    auto base = payload_at(rank, wave - 1, &base_error);
    if (!base) {
      if (base_error.ok()) {
        set_error(error, fault::ArchiveFault::kBaseMismatch,
                  "delta for rank " + std::to_string(rank) +
                      " diffs against a base wave that does not hold it");
      } else if (error != nullptr) {
        *error = base_error;
      }
      return std::nullopt;
    }
    base_payload = std::move(*base);
  }
  return apply_delta_payload(*payload, base_payload, error);
}

std::optional<instrument::VisitLog> WaveChain::visit(int rank, int wave,
                                                     Error* error) const {
  const auto payload = payload_at(rank, wave, error);
  if (!payload) return std::nullopt;
  auto log = decode_site_payload(*payload, error);
  if (log && log->rank != rank) {
    set_error(error, fault::ArchiveFault::kCorruptIndex,
              "materialized payload holds rank " + std::to_string(log->rank) +
                  ", chain resolved rank " + std::to_string(rank));
    return std::nullopt;
  }
  return log;
}

bool WaveChain::for_each(
    int wave, const std::function<void(instrument::VisitLog&&)>& sink,
    Error* error) const {
  if (wave < 0 || wave >= waves()) {
    set_error(error, fault::ArchiveFault::kNone, "wave index out of range");
    return false;
  }
  for (const int rank : ranks_[static_cast<std::size_t>(wave)]) {
    auto log = visit(rank, wave, error);
    if (!log) return false;
    sink(std::move(*log));
  }
  if (error != nullptr) *error = {};
  return true;
}

}  // namespace cg::store
