// Per-site delta encoding for CGAR delta archives.
//
// A delta block carries one site's visit log as an edit script against the
// byte payload of the same rank's block in the base archive:
//
//   Delta payload := varint rank | u8 mode | body
//     mode 0 (diff): u32 crc32c(base payload) | op stream
//     mode 1 (raw):  the full site-block payload (rank absent from base,
//                    or the diff would have been larger)
//
//   op := varint tag               tag = (len << 1) | kind, len >= 1
//         kind 0 (copy):   varint base_offset — copy len base bytes
//         kind 1 (insert): len literal bytes follow
//
// The diff is a greedy 16-byte-anchor matcher over a sorted (hash, offset)
// table of the base payload — plain sorted vectors, no unordered
// containers, so the encoding is a pure function of (base, target) and a
// delta archive written at N threads is byte-identical to 1 thread.
//
// The mode-0 CRC pins the exact base bytes the ops were computed against:
// applying a delta to any other block (a spliced or regenerated base)
// fails kBaseMismatch before producing silently wrong records.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "instrument/records.h"
#include "store/cgar.h"

namespace cg::store {

class Reader;

/// Encodes `new_payload` as a delta-block payload against `base_payload`.
/// Picks whichever of diff/raw mode is smaller (diff wins ties).
std::string encode_delta_payload(int rank, std::string_view base_payload,
                                 std::string_view new_payload);

/// Raw-mode delta payload for a rank the base archive does not hold.
std::string encode_raw_delta_payload(int rank, std::string_view new_payload);

/// Applies a delta payload to the base block payload it was diffed
/// against, yielding the wave's site-block payload. kBaseMismatch when the
/// recorded base CRC disagrees with `base_payload`; kCorruptBlock on any
/// structural damage (bad op, out-of-range copy).
std::optional<std::string> apply_delta_payload(std::string_view delta_payload,
                                               std::string_view base_payload,
                                               Error* error = nullptr);

/// Structural validation only (op stream well-formed, lengths in range of
/// the declared sizes) — what verify() can check without the base archive.
bool validate_delta_payload(std::string_view delta_payload,
                            Error* error = nullptr);

/// One site's contribution to a delta archive, computed on a shard worker.
struct WaveBlock {
  enum class Kind {
    kInherited,  // byte-identical to the base: no block, footer entry only
    kDelta,      // framed kDelta block in `block`
  };
  Kind kind = Kind::kDelta;
  std::string block;
};

/// Encodes `log` against the base wave's *materialized* site payload for
/// the same rank (std::nullopt when the base holds no such rank):
/// byte-identical → inherited; absent → raw delta; otherwise a diff. Pure,
/// thread-safe — shard workers call this so the merge thread only appends.
WaveBlock make_wave_block(std::optional<std::string_view> base_payload,
                          const instrument::VisitLog& log);

/// make_wave_block against a full base archive's physical blocks. Fails
/// kDeltaUnresolved when `base` is itself a delta archive (its physical
/// payloads are edit scripts, not site payloads — materialize through
/// store::WaveChain instead) and kChecksumMismatch/etc. when the base's
/// block for this rank is corrupt.
std::optional<WaveBlock> encode_wave_block(const Reader& base,
                                           const instrument::VisitLog& log,
                                           Error* error = nullptr);

}  // namespace cg::store
