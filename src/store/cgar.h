// CGAR — the CookieGuard crawl-archive format (v1).
//
// The paper's pipeline is two-phase: crawl once, analyze many times (every
// table and figure derives from one measurement corpus). CGAR is the
// persistent form of that corpus: a binary, checksummed, random-access
// record store that a 20k-site crawl streams into once and every analysis
// afterwards replays in seconds.
//
// File layout (all multi-byte fixed-width integers little-endian):
//
//   Header   (16 bytes)  magic "CGAR\xF1\r\n\0", u8 version, u8 flags,
//                        6 reserved zero bytes
//   Block*               one site block per crawled site, in rank order
//   Footer               one footer block (type 2)
//   Trailer  (16 bytes)  u64 footer block offset, magic "CGAREND\x01"
//
//   Block := u8 type | varint payload_len | u32 crc32c(payload) | payload
//
// Site block payload: varint rank, a block-local string table (varint
// count, then varint-length-prefixed bytes), and the visit-log body whose
// string fields are varint indices into that table. Blocks are therefore
// self-contained: any site decodes without touching the rest of the file,
// which is what makes the footer's offset index a random-access index and
// not just a table of contents.
//
// Footer payload: format version (again — a reader detects a footer spliced
// from a different version), record schema version, corpus/fault seeds, and
// the per-site index: (rank, offset, length) with rank and offset
// delta-encoded. Site blocks are required to be contiguous — every index
// entry must start exactly where the previous block ended — so a spliced,
// duplicated, or reordered block stream cannot agree with any valid index.
//
// Determinism: the byte encoding has no timestamps, hashes, pointers, or
// map iteration — string-table order is first-use order in record order —
// so encoding a VisitLog is a pure function, and an archive written by an
// N-thread crawl (blocks encoded on shard workers, flushed through the
// in-order merge) is byte-identical to the 1-thread archive.
//
// Corruption never crashes a reader: every rejection carries a
// fault::ArchiveFault taxonomy class (see src/fault/fault.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.h"

namespace cg::store {

inline constexpr std::uint8_t kFormatVersion = 1;
inline constexpr std::string_view kHeaderMagic = "CGAR\xF1\r\n";  // + NUL = 8
inline constexpr std::string_view kTrailerMagic = "CGAREND\x01";
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTrailerSize = 16;

enum class BlockType : std::uint8_t {
  kSite = 1,
  kFooter = 2,
  kDelta = 3,  // per-site diff against the same rank in a base archive
};

/// Which cookie-partitioning policy the crawl that produced an archive ran
/// under. Store-side mirror of policy::PolicyKind — src/store cannot depend
/// on src/policy (layering), but the footer must record the policy so a
/// reader can hard-check it the same way it checks corpus/fault seeds:
/// folding a CookieGuard archive into a none-policy trend line is exactly
/// the silent-apples-to-oranges mistake provenance exists to catch.
enum class ArchivePolicy : std::uint8_t {
  kNone = 0,
  kCookieGuard = 1,
  kFirstPartyIsolation = 2,
  kChips = 3,
};

constexpr std::string_view archive_policy_name(ArchivePolicy policy) {
  switch (policy) {
    case ArchivePolicy::kNone:
      return "none";
    case ArchivePolicy::kCookieGuard:
      return "cookieguard";
    case ArchivePolicy::kFirstPartyIsolation:
      return "fpi";
    case ArchivePolicy::kChips:
      return "chips";
  }
  return "unknown";
}

/// Full archive (every site a self-contained kSite block) or delta archive
/// (kDelta blocks diffed against a base archive, plus zero-byte "inherited"
/// ranks whose visit logs are byte-identical to the base's).
enum class ArchiveKind : std::uint8_t {
  kFull = 0,
  kDelta = 1,
};

constexpr std::string_view archive_kind_name(ArchiveKind kind) {
  switch (kind) {
    case ArchiveKind::kFull:
      return "full";
    case ArchiveKind::kDelta:
      return "delta";
  }
  return "unknown";
}

/// Why a reader rejected an archive: taxonomy class plus a human-readable
/// detail naming the offending offset/field.
struct Error {
  fault::ArchiveFault code = fault::ArchiveFault::kNone;
  std::string detail;

  bool ok() const { return code == fault::ArchiveFault::kNone; }
  std::string to_string() const {
    std::string out(fault::archive_fault_name(code));
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

// ---- primitive encoding --------------------------------------------------
// LEB128 varints; signed values zigzag-encoded. Decoders never read past
// `end` and reject overlong (>10 byte) encodings — a flipped continuation
// bit degrades to kCorruptBlock, not an infinite loop or a huge bogus value.

inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

inline void put_zigzag(std::string& out, std::int64_t value) {
  put_varint(out, (static_cast<std::uint64_t>(value) << 1) ^
                      static_cast<std::uint64_t>(value >> 63));
}

inline void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

inline void put_u64le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

/// Cursor over an immutable byte range. All reads are bounds-checked; a
/// failed read sets `failed` and every later read fails too, so decode
/// loops need only one check at the end.
struct ByteReader {
  const char* cursor = nullptr;
  const char* end = nullptr;
  bool failed = false;

  explicit ByteReader(std::string_view bytes)
      : cursor(bytes.data()), end(bytes.data() + bytes.size()) {}

  std::size_t remaining() const {
    return failed ? 0 : static_cast<std::size_t>(end - cursor);
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (!failed) {
      if (cursor == end || shift >= 64) {
        failed = true;
        break;
      }
      const std::uint8_t byte = static_cast<std::uint8_t>(*cursor++);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
    return 0;
  }

  std::int64_t zigzag() {
    const std::uint64_t raw = varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  std::uint32_t u32le() {
    if (failed || remaining() < 4) {
      failed = true;
      return 0;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(*cursor++))
               << (8 * i);
    }
    return value;
  }

  std::uint64_t u64le() {
    if (failed || remaining() < 8) {
      failed = true;
      return 0;
    }
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*cursor++))
               << (8 * i);
    }
    return value;
  }

  std::string_view bytes(std::size_t n) {
    if (failed || remaining() < n) {
      failed = true;
      return {};
    }
    const std::string_view view(cursor, n);
    cursor += n;
    return view;
  }
};

// ---- block framing (shared by the writer, the reader, and the fuzz tests
// that craft deliberately-evil archives) ----------------------------------

/// The 16-byte file header.
inline std::string encode_header() {
  std::string out(kHeaderMagic);
  out.push_back('\0');  // 8th magic byte
  out.push_back(static_cast<char>(kFormatVersion));
  out.push_back('\0');  // flags
  out.append(6, '\0');  // reserved
  return out;
}

/// Frames `payload` as a block: type, length, CRC32C, bytes.
std::string encode_block(BlockType type, std::string_view payload);

/// The 16-byte trailer pointing back at the footer block.
inline std::string encode_trailer(std::uint64_t footer_offset) {
  std::string out;
  put_u64le(out, footer_offset);
  out += kTrailerMagic;
  return out;
}

/// One footer-index entry: where a site's block lives in the file.
struct IndexEntry {
  int rank = 0;
  std::uint64_t offset = 0;  // file offset of the block's type byte
  std::uint64_t length = 0;  // full framed block length (frame + payload)
};

/// A delta archive's fingerprint of the exact base it was diffed against.
/// Chain linkage is checked field-for-field at resolve time; footer_crc
/// (CRC32C of the base's entire footer payload) covers everything else —
/// two archives with the same seeds but different indexes cannot swap.
struct BaseProvenance {
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;
  std::uint64_t evolution_seed = 0;
  ArchivePolicy policy = ArchivePolicy::kNone;
  std::uint32_t wave = 0;
  std::uint32_t site_count = 0;   // base's blocks + inherited ranks
  std::uint32_t footer_crc = 0;   // crc32c(base footer payload)
};

/// Everything the footer records besides the index itself.
///
/// The fields after `fault_seed` live in a footer *extension* appended
/// after the index (guarded by an extension version). A v1 footer that
/// ends right after its index is a legacy full archive: policy none,
/// wave 0, no evolution — readers default the extension instead of
/// rejecting it, so pre-extension archives stay readable.
struct FooterInfo {
  std::uint8_t format_version = kFormatVersion;
  std::uint32_t schema_version = 0;
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;
  ArchivePolicy policy = ArchivePolicy::kNone;
  ArchiveKind kind = ArchiveKind::kFull;
  std::uint32_t wave = 0;
  std::uint64_t evolution_seed = 0;
  BaseProvenance base;              // meaningful only when kind == kDelta
  std::vector<int> inherited_ranks; // delta archives: byte-identical sites
};

inline constexpr std::uint64_t kFooterExtensionVersion = 1;

/// Footer payload: version + schema + seeds + delta-encoded index. Exposed
/// (like encode_block) so tests can craft deliberately inconsistent
/// archives with valid checksums.
std::string encode_footer_payload(const FooterInfo& info,
                                  const std::vector<IndexEntry>& index);

/// One parsed block frame. `payload` aliases the input buffer.
struct BlockFrame {
  BlockType type = BlockType::kSite;
  std::string_view payload;
  std::size_t total_size = 0;  // frame + payload, for walking the stream
};

/// Parses and CRC-verifies the block starting at `offset`. On failure the
/// returned optional is empty and `error` names the taxonomy class.
std::optional<BlockFrame> decode_block(std::string_view file,
                                       std::size_t offset, Error* error);

}  // namespace cg::store
