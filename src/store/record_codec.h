// VisitLog ⇄ CGAR site-block payload.
//
// Encoding is a pure function of the log (no clocks, no map iteration, no
// pointers), so shard workers can encode blocks in parallel and the merged
// archive stays byte-identical at any thread count. Strings are interned
// into a block-local table in first-use order; records reference them by
// varint index — the setter domains and script URLs that repeat hundreds of
// times per site are stored once.
//
// Decoding validates everything: enum values in range, string indices in
// table, record counts consistent with the bytes that follow. Any
// violation degrades to Error{kCorruptBlock}, never UB — the decoder is
// fuzzed over truncated and bit-flipped inputs (tests/fuzz_test.cpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "instrument/records.h"
#include "store/cgar.h"

namespace cg::store {

/// Encodes `log` as a site-block payload (rank, string table, body).
std::string encode_site_payload(const instrument::VisitLog& log);

/// Convenience: the payload framed as a complete site block, ready to
/// append to an archive stream. Pure — safe on any shard worker.
std::string encode_site_block(const instrument::VisitLog& log);

/// Reads the rank varint off the front of a site-block payload without
/// decoding the rest (the writer's resume scan needs only this).
std::optional<int> peek_site_rank(std::string_view payload);

/// Decodes a site-block payload. Empty optional + taxonomy'd `error` on any
/// structural violation.
std::optional<instrument::VisitLog> decode_site_payload(
    std::string_view payload, Error* error);

}  // namespace cg::store
