// Streaming CGAR writer — self-healing since PR 6.
//
// Append-only: header on construction, one site block per add() /
// append_site_block() call, footer + trailer on finish(). The writer holds
// only the (rank, offset, length) index in memory — a 20k-site archive
// streams to disk without the record corpus ever being resident.
//
// Threading contract mirrors the crawl's merge discipline: encoding a block
// (encode_site_block) is pure and runs on shard workers; the Writer itself
// is single-thread and is only ever called from the merge thread, in
// site-index order. That makes the archive byte-identical at any thread
// count — including its I/O retry schedule, since the sink op sequence is a
// pure function of the block sequence.
//
// Self-healing: all bytes flow through a store::ByteSink whose failures
// carry the fault::IoFault taxonomy. Transient faults (ENOSPC, short
// writes, stream errors) are healed by truncate-back-and-retry with
// exponential backoff accounted on a virtual I/O clock; scrub_writes
// read-back-verifies every appended block, which is the only way to catch
// silent bit flips; sync_for_checkpoint() establishes a durability barrier
// and — when buffer_unsynced is on — heals fsync loss by rewriting the
// dropped tail. Per-class error budgets flow through obs::MetricsRegistry
// (io.faults.*, io.retries, io.scrub_detected, io.sync_heals,
// io.backoff_ms). A block that exhausts the retry budget fails the append
// (false) with the file restored to its pre-block state: the crawler
// quarantines that site and the run continues.
//
// Crash safety: resume() reopens a partial archive (header + site blocks,
// no footer), keeps exactly the `sites` blocks a crawl checkpoint accounted
// for, truncates anything written after the checkpoint — torn blocks,
// bit-flipped tails, garbage — and continues appending: the finished file
// is byte-identical to an uninterrupted run. Damage *inside* the
// checkpointed prefix is not repairable from the checkpoint and surfaces
// with its precise taxonomy class (kChecksumMismatch for flips, kTruncated
// for missing bytes). walk_prefix() exposes the validate-and-truncate step
// so harnesses can resume onto custom sinks (bench_chaos resumes through a
// FaultingSink).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "instrument/records.h"
#include "net/clock.h"
#include "obs/metrics.h"
#include "store/byte_sink.h"
#include "store/cgar.h"

namespace cg::store {

/// Retry/repair policy for sink operations.
struct IoRetryPolicy {
  /// Retries per failed operation beyond the first attempt.
  int max_retries = 8;
  /// Exponential backoff between attempts — doubles per retry — accounted
  /// on the writer's virtual I/O clock (io_backoff_ms()), never slept.
  TimeMillis backoff_base_ms = 50;
  /// Read-back-verify every appended block against the medium. The only
  /// defense against silent bit flips; requires a sink with read_back
  /// support (no-op otherwise). Off by default: scrubbing re-reads every
  /// byte written.
  bool scrub_writes = false;
  /// Retain the bytes appended since the last successful sync so
  /// sync_for_checkpoint() can heal fsync loss by rewriting the dropped
  /// tail. Memory-bounded by the checkpoint interval; off by default
  /// because a checkpoint-less pack would buffer the whole archive.
  bool buffer_unsynced = false;
};

struct WriterOptions {
  /// Provenance recorded in the footer; readers cross-check these against
  /// the corpus an analysis is about to run with.
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;  // 0 = crawl ran with faults disabled
  /// Longitudinal provenance (footer extension). The partitioning policy
  /// the crawl ran under is hard provenance, same as the seeds.
  ArchivePolicy policy = ArchivePolicy::kNone;
  ArchiveKind kind = ArchiveKind::kFull;
  std::uint32_t wave = 0;
  std::uint64_t evolution_seed = 0;  // 0 = corpus does not evolve
  /// Required when kind == kDelta: the exact base wave this archive's
  /// deltas and inherited ranks resolve against.
  BaseProvenance base;
  IoRetryPolicy io;
  /// Receives the I/O error-budget counters (io.*). Non-owning; must be
  /// driven from the writer's (merge) thread only.
  obs::MetricsRegistry* metrics = nullptr;
};

class Writer {
 public:
  /// Streams to an externally-owned ostream (must be opened binary; tests
  /// use std::ostringstream). Writes the header immediately.
  Writer(std::ostream* out, WriterOptions options);

  /// Streams to `sink` (fresh archive: writes the header immediately).
  /// Header-write failure after retries marks the writer dead — every
  /// append fails and finish() reports the taxonomized error.
  Writer(std::unique_ptr<ByteSink> sink, WriterOptions options);

  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Creates `path` (truncating) and returns a writer that owns the sink.
  /// Null + Error{kIoError} when the file cannot be opened or the header
  /// cannot be written.
  static std::unique_ptr<Writer> create(const std::string& path,
                                        WriterOptions options,
                                        Error* error = nullptr);

  /// Reopens a partial archive for checkpoint resume: walk_prefix() +
  /// append-mode FileSink. Null + taxonomy'd error when the prefix is
  /// unusable.
  static std::unique_ptr<Writer> resume(const std::string& path,
                                        WriterOptions options, int sites,
                                        Error* error = nullptr);

  /// A validated resume prefix: the rebuilt index and its byte extent.
  struct ResumePrefix {
    std::vector<IndexEntry> index;
    std::uint64_t bytes = 0;
  };

  /// The validate-and-truncate half of resume(): validates the header,
  /// CRC-walks the first `sites` site blocks (rebuilding the index), and
  /// truncates the file after them — discarding torn, bit-flipped, or
  /// garbage tails. Fewer than `sites` intact blocks fails with the
  /// precise taxonomy class of the damage (kTruncated when the bytes ran
  /// out, kChecksumMismatch/kCorruptBlock when the prefix itself is
  /// damaged). Pair with the adopting constructor to resume onto a custom
  /// sink.
  static std::optional<ResumePrefix> walk_prefix(const std::string& path,
                                                 int sites,
                                                 Error* error = nullptr);

  /// Adopts a validated prefix (from walk_prefix) and appends through
  /// `sink`, which must already be positioned at prefix.bytes (e.g. a
  /// FileSink opened in append mode after walk_prefix truncated the file).
  Writer(std::unique_ptr<ByteSink> sink, WriterOptions options,
         ResumePrefix prefix);

  /// Encodes and appends one site block. Equivalent to
  /// append_site_block(log.rank, encode_site_block(log)) — use the split
  /// form when blocks are encoded ahead of time on shard workers.
  bool add(const instrument::VisitLog& log);

  /// Appends a pre-framed site block (from encode_site_block). Blocks must
  /// arrive in strictly increasing rank order; violations are surfaced at
  /// finish() rather than silently producing an unreadable archive.
  /// Transient I/O faults are healed internally (truncate-back + retry +
  /// scrub). False = the block exhausted the retry budget and the file was
  /// restored to its pre-block state (last_io_error() has the taxonomy):
  /// the caller decides whether to quarantine the site or abort.
  bool append_site_block(int rank, std::string&& block);

  /// Delta archives (kind == kDelta): appends a pre-framed kDelta block
  /// (from make_wave_block / encode_wave_block). Same healing and
  /// rank-order contract as append_site_block; site, delta, and inherited
  /// ranks share one strictly-increasing order.
  bool append_delta_block(int rank, std::string&& block);

  /// Delta archives: records `rank` as inherited — byte-identical to the
  /// base wave, so it costs zero archive bytes and only a footer entry.
  /// Cannot fail on I/O (nothing is written until finish()).
  bool add_inherited(int rank);

  /// Durability barrier before a checkpoint is emitted: flush + sync with
  /// the same retry budget, healing fsync loss by rewriting the unsynced
  /// tail when buffer_unsynced is on. A checkpoint emitted after this
  /// returns true references only bytes that survive a crash. False: the
  /// barrier could not be established — skip the checkpoint emission (the
  /// previous checkpoint remains the recovery point).
  bool sync_for_checkpoint(Error* error = nullptr);

  /// Writes footer + trailer, flushes, and syncs. False + taxonomy'd error
  /// if I/O failed permanently or blocks arrived out of rank order.
  /// Idempotent.
  bool finish(Error* error = nullptr);

  int sites_written() const { return static_cast<int>(index_.size()); }
  int inherited_written() const {
    return static_cast<int>(inherited_.size());
  }
  /// Bytes emitted so far (header + site blocks; footer/trailer only after
  /// finish()). A crawl checkpoint records this for resume verification.
  std::uint64_t bytes_written() const { return bytes_; }
  const std::vector<IndexEntry>& index() const { return index_; }

  /// Virtual time burned in I/O retry backoff (never slept; accounted so
  /// chaos runs can assert on it and ops dashboards can graph it).
  TimeMillis io_backoff_ms() const { return io_backoff_ms_; }
  /// The last permanent (post-retry) I/O failure, kNone-coded if none.
  const Error& last_io_error() const { return last_io_error_; }

 private:
  /// Runs `attempt` under the retry policy: counts per-class faults,
  /// advances the virtual backoff clock between tries, and records the
  /// permanent error on exhaustion. `attempt` must be re-runnable.
  bool run_io(std::string_view what,
              const std::function<IoStatus()>& attempt);

  /// One retryable unit: truncate back to the pre-write offset (when a
  /// prior try may have landed bytes), write, optionally scrub. On success
  /// advances bytes_ and the unsynced buffer.
  bool append_bytes(std::string_view bytes, std::string_view what);

  void count_metric(std::string_view name, std::int64_t delta = 1);

  /// Tracks the shared rank order across site blocks, delta blocks, and
  /// inherited ranks; violations surface at finish().
  void note_rank(int rank);

  std::unique_ptr<ByteSink> sink_;
  WriterOptions options_;
  std::vector<IndexEntry> index_;
  std::vector<int> inherited_;  // delta archives: zero-byte ranks
  int last_rank_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t synced_bytes_ = 0;
  std::string unsynced_;  // bytes since last sync, when buffer_unsynced
  TimeMillis io_backoff_ms_ = 0;
  Error last_io_error_;
  bool finished_ = false;
  bool rank_order_violated_ = false;
  /// Unrecoverable writer state: header never landed, or a sync loss could
  /// not be healed (no tail buffer). All further appends fail fast.
  bool dead_ = false;
};

}  // namespace cg::store
