// Streaming CGAR writer.
//
// Append-only: header on construction, one site block per add() /
// append_site_block() call, footer + trailer on finish(). The writer holds
// only the (rank, offset, length) index in memory — a 20k-site archive
// streams to disk without the record corpus ever being resident.
//
// Threading contract mirrors the crawl's merge discipline: encoding a block
// (encode_site_block) is pure and runs on shard workers; the Writer itself
// is single-thread and is only ever called from the merge thread, in
// site-index order. That makes the archive byte-identical at any thread
// count.
//
// Crash safety: resume() reopens a partial archive (header + site blocks,
// no footer), keeps exactly the `sites` blocks a crawl checkpoint accounted
// for, truncates anything written after the checkpoint, and continues
// appending — the finished file is byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "instrument/records.h"
#include "store/cgar.h"

namespace cg::store {

struct WriterOptions {
  /// Provenance recorded in the footer; readers cross-check these against
  /// the corpus an analysis is about to run with.
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;  // 0 = crawl ran with faults disabled
};

class Writer {
 public:
  /// Streams to an externally-owned ostream (must be opened binary; tests
  /// use std::ostringstream). Writes the header immediately.
  Writer(std::ostream* out, WriterOptions options);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Creates `path` (truncating) and returns a writer that owns the stream.
  /// Null + Error{kIoError} when the file cannot be opened.
  static std::unique_ptr<Writer> create(const std::string& path,
                                        WriterOptions options,
                                        Error* error = nullptr);

  /// Reopens a partial archive for checkpoint resume: validates the header,
  /// CRC-walks the first `sites` site blocks (rebuilding the index),
  /// truncates everything after them, and appends from there. Null +
  /// taxonomy'd error when the prefix is unusable — fewer than `sites`
  /// intact blocks is kTruncated.
  static std::unique_ptr<Writer> resume(const std::string& path,
                                        WriterOptions options, int sites,
                                        Error* error = nullptr);

  /// Encodes and appends one site block. Equivalent to
  /// append_site_block(log.rank, encode_site_block(log)) — use the split
  /// form when blocks are encoded ahead of time on shard workers.
  void add(const instrument::VisitLog& log);

  /// Appends a pre-framed site block (from encode_site_block). Blocks must
  /// arrive in strictly increasing rank order; violations are surfaced at
  /// finish() rather than silently producing an unreadable archive.
  void append_site_block(int rank, std::string&& block);

  /// Writes footer + trailer and flushes. False + taxonomy'd error if the
  /// stream failed or blocks arrived out of rank order. Idempotent.
  bool finish(Error* error = nullptr);

  int sites_written() const { return static_cast<int>(index_.size()); }
  /// Bytes emitted so far (header + site blocks; footer/trailer only after
  /// finish()). A crawl checkpoint records this for resume verification.
  std::uint64_t bytes_written() const { return bytes_; }
  const std::vector<IndexEntry>& index() const { return index_; }

 private:
  Writer(std::unique_ptr<std::ostream> owned, WriterOptions options,
         std::vector<IndexEntry> index, std::uint64_t bytes);

  void write(std::string_view bytes);

  std::unique_ptr<std::ostream> owned_out_;
  std::ostream* out_;
  WriterOptions options_;
  std::vector<IndexEntry> index_;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
  bool rank_order_violated_ = false;
};

}  // namespace cg::store
