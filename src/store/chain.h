// WaveChain — resolves a base + delta archive sequence into per-wave logs.
//
// A longitudinal crawl is stored as one full archive (wave 0) plus one
// delta archive per later wave, each diffed against the wave before it.
// WaveChain::link() validates the chain once — wave 0 must be a full
// archive, every later archive a delta whose recorded BaseProvenance
// (seeds, policy, wave, site count, footer CRC) matches its predecessor
// field-for-field — so a delta spliced onto the wrong base, a re-packed
// base, or a policy-mixed chain is rejected with kBaseMismatch before any
// record is materialized.
//
// Materialization is recursive and per-site: visit(rank, w) resolves an
// inherited rank to the previous wave, applies a diff to the previous
// wave's materialized payload (CRC-pinned: the diff records the exact base
// bytes it was computed against), or decodes a raw delta directly. The
// chain borrows its Readers — callers keep them alive — and holds no
// per-site state, so it is safe to share across threads.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "instrument/records.h"
#include "store/cgar.h"
#include "store/reader.h"

namespace cg::store {

class WaveChain {
 public:
  /// Validates and links `archives` (borrowed; chain order = wave order).
  /// Empty optional + taxonomy'd error when the chain is inconsistent:
  /// kDeltaUnresolved when wave 0 is not a full archive, kBaseMismatch
  /// when a delta's recorded base provenance disagrees with its
  /// predecessor or an inherited rank has nothing to inherit.
  static std::optional<WaveChain> link(std::vector<const Reader*> archives,
                                       Error* error = nullptr);

  int waves() const { return static_cast<int>(archives_.size()); }
  const Reader& archive(int wave) const { return *archives_.at(wave); }

  /// Sorted logical rank set at `wave` (blocks + inherited).
  const std::vector<int>& ranks(int wave) const { return ranks_.at(wave); }
  int site_count(int wave) const {
    return static_cast<int>(ranks_.at(wave).size());
  }

  /// The materialized site-block payload of `rank` at `wave`. Empty
  /// optional with error.code == kNone when the rank is not in that wave's
  /// site set; kBaseMismatch / kCorruptBlock / kChecksumMismatch when the
  /// chain cannot resolve it.
  std::optional<std::string> payload_at(int rank, int wave,
                                        Error* error = nullptr) const;

  /// Materialized visit log of `rank` at `wave`.
  std::optional<instrument::VisitLog> visit(int rank, int wave,
                                            Error* error = nullptr) const;

  /// Streams every site of `wave` in rank order. Stops and returns false
  /// on the first unresolvable site.
  bool for_each(int wave,
                const std::function<void(instrument::VisitLog&&)>& sink,
                Error* error = nullptr) const;

 private:
  WaveChain() = default;

  std::vector<const Reader*> archives_;
  std::vector<std::vector<int>> ranks_;
};

}  // namespace cg::store
