#include "store/delta_codec.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "crypto/crc32c.h"
#include "store/reader.h"
#include "store/record_codec.h"

namespace cg::store {
namespace {

constexpr std::uint8_t kModeDiff = 0;
constexpr std::uint8_t kModeRaw = 1;

/// Anchor granularity of the diff matcher. 16 bytes is small enough that a
/// renewed cookie value (24 hex chars) still leaves matchable runs around
/// it, large enough that anchor tables stay ~payload/16 entries.
constexpr std::size_t kChunk = 16;

/// Candidates examined per anchor hash. Bounds worst-case encode time on
/// pathological (highly repetitive) payloads; candidates are visited in
/// ascending base offset, so the cap is deterministic.
constexpr std::size_t kMaxCandidates = 8;

std::uint64_t chunk_hash(const char* p) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (std::size_t i = 0; i < kChunk; ++i) {
    h = (h ^ static_cast<std::uint8_t>(p[i])) * 1099511628211ULL;
  }
  return h;
}

void put_copy(std::string& out, std::uint64_t len, std::uint64_t offset) {
  put_varint(out, len << 1);
  put_varint(out, offset);
}

void put_insert(std::string& out, std::string_view bytes) {
  put_varint(out, (static_cast<std::uint64_t>(bytes.size()) << 1) | 1);
  out += bytes;
}

/// Greedy anchor-match edit script; returns just the op stream.
std::string diff_ops(std::string_view base, std::string_view target) {
  // Sorted (hash, offset) anchors at base chunk boundaries. Sorting by
  // (hash, offset) makes candidate visit order — and so the whole edit
  // script — a pure function of the two byte strings.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> anchors;
  if (base.size() >= kChunk) {
    anchors.reserve(base.size() / kChunk);
    for (std::size_t off = 0; off + kChunk <= base.size(); off += kChunk) {
      anchors.emplace_back(chunk_hash(base.data() + off), off);
    }
    std::sort(anchors.begin(), anchors.end());
  }

  std::string out;
  std::size_t literal_start = 0;
  const auto flush_literal = [&](std::size_t end) {
    if (end > literal_start) {
      put_insert(out, target.substr(literal_start, end - literal_start));
    }
  };

  std::size_t pos = 0;
  while (pos + kChunk <= target.size()) {
    const std::uint64_t h = chunk_hash(target.data() + pos);
    const auto range = std::equal_range(
        anchors.begin(), anchors.end(), std::make_pair(h, std::uint64_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    std::size_t examined = 0;
    for (auto it = range.first;
         it != range.second && examined < kMaxCandidates; ++it, ++examined) {
      const std::size_t off = static_cast<std::size_t>(it->second);
      std::size_t len = 0;
      const std::size_t max_len =
          std::min(target.size() - pos, base.size() - off);
      while (len < max_len && base[off + len] == target[pos + len]) ++len;
      if (len >= kChunk && len > best_len) {
        best_len = len;
        best_off = off;
      }
    }
    if (best_len >= kChunk) {
      flush_literal(pos);
      put_copy(out, best_len, best_off);
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literal(target.size());
  return out;
}

void set_error(Error* error, fault::ArchiveFault code, std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
}

}  // namespace

std::string encode_raw_delta_payload(int rank, std::string_view new_payload) {
  std::string out;
  put_varint(out, static_cast<std::uint64_t>(rank));
  out.push_back(static_cast<char>(kModeRaw));
  out += new_payload;
  return out;
}

std::string encode_delta_payload(int rank, std::string_view base_payload,
                                 std::string_view new_payload) {
  std::string diff;
  put_varint(diff, static_cast<std::uint64_t>(rank));
  diff.push_back(static_cast<char>(kModeDiff));
  put_u32le(diff, crypto::crc32c(base_payload));
  diff += diff_ops(base_payload, new_payload);

  std::string raw = encode_raw_delta_payload(rank, new_payload);
  return diff.size() <= raw.size() ? diff : raw;
}

std::optional<std::string> apply_delta_payload(std::string_view delta_payload,
                                               std::string_view base_payload,
                                               Error* error) {
  ByteReader reader(delta_payload);
  (void)reader.varint();  // rank — the caller checks it against the index
  const auto mode_byte = reader.bytes(1);
  if (reader.failed) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload header is cut short");
    return std::nullopt;
  }
  const std::uint8_t mode = static_cast<std::uint8_t>(mode_byte[0]);
  if (mode == kModeRaw) {
    if (error != nullptr) *error = {};
    return std::string(reader.bytes(reader.remaining()));
  }
  if (mode != kModeDiff) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload declares unknown mode " + std::to_string(mode));
    return std::nullopt;
  }
  const std::uint32_t base_crc = reader.u32le();
  if (reader.failed) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload base CRC is cut short");
    return std::nullopt;
  }
  if (crypto::crc32c(base_payload) != base_crc) {
    set_error(error, fault::ArchiveFault::kBaseMismatch,
              "delta was diffed against different base bytes (base CRC "
              "mismatch)");
    return std::nullopt;
  }
  std::string out;
  while (reader.remaining() > 0) {
    const std::uint64_t tag = reader.varint();
    const std::uint64_t len = tag >> 1;
    if (reader.failed || len == 0) {
      set_error(error, fault::ArchiveFault::kCorruptBlock,
                "delta op stream holds a malformed op tag");
      return std::nullopt;
    }
    if ((tag & 1) == 0) {
      const std::uint64_t offset = reader.varint();
      if (reader.failed || offset > base_payload.size() ||
          len > base_payload.size() - offset) {
        set_error(error, fault::ArchiveFault::kCorruptBlock,
                  "delta copy op reaches outside the base payload");
        return std::nullopt;
      }
      out += base_payload.substr(static_cast<std::size_t>(offset),
                                 static_cast<std::size_t>(len));
    } else {
      const std::string_view literal =
          reader.bytes(static_cast<std::size_t>(len));
      if (reader.failed) {
        set_error(error, fault::ArchiveFault::kCorruptBlock,
                  "delta insert op is cut short");
        return std::nullopt;
      }
      out += literal;
    }
  }
  if (error != nullptr) *error = {};
  return out;
}

bool validate_delta_payload(std::string_view delta_payload, Error* error) {
  ByteReader reader(delta_payload);
  (void)reader.varint();  // rank
  const auto mode_byte = reader.bytes(1);
  if (reader.failed) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload header is cut short");
    return false;
  }
  const std::uint8_t mode = static_cast<std::uint8_t>(mode_byte[0]);
  if (mode == kModeRaw) {
    if (error != nullptr) *error = {};
    return true;
  }
  if (mode != kModeDiff) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta payload declares unknown mode " + std::to_string(mode));
    return false;
  }
  (void)reader.u32le();  // base CRC — needs the base archive to check
  while (!reader.failed && reader.remaining() > 0) {
    const std::uint64_t tag = reader.varint();
    const std::uint64_t len = tag >> 1;
    if (reader.failed || len == 0) {
      set_error(error, fault::ArchiveFault::kCorruptBlock,
                "delta op stream holds a malformed op tag");
      return false;
    }
    if ((tag & 1) == 0) {
      (void)reader.varint();  // base offset — range-checked at apply time
    } else {
      (void)reader.bytes(static_cast<std::size_t>(len));
    }
  }
  if (reader.failed) {
    set_error(error, fault::ArchiveFault::kCorruptBlock,
              "delta op stream is cut short");
    return false;
  }
  if (error != nullptr) *error = {};
  return true;
}

WaveBlock make_wave_block(std::optional<std::string_view> base_payload,
                          const instrument::VisitLog& log) {
  const std::string new_payload = encode_site_payload(log);
  if (!base_payload) {
    // Rank absent from the base: a site that newly answered this wave.
    WaveBlock out;
    out.kind = WaveBlock::Kind::kDelta;
    out.block = encode_block(BlockType::kDelta,
                             encode_raw_delta_payload(log.rank, new_payload));
    return out;
  }
  if (*base_payload == new_payload) {
    return WaveBlock{WaveBlock::Kind::kInherited, {}};
  }
  WaveBlock out;
  out.kind = WaveBlock::Kind::kDelta;
  out.block = encode_block(
      BlockType::kDelta,
      encode_delta_payload(log.rank, *base_payload, new_payload));
  return out;
}

std::optional<WaveBlock> encode_wave_block(const Reader& base,
                                           const instrument::VisitLog& log,
                                           Error* error) {
  if (base.kind() != ArchiveKind::kFull) {
    set_error(error, fault::ArchiveFault::kDeltaUnresolved,
              "cannot diff against a delta archive's physical blocks — "
              "materialize the base wave through store::WaveChain");
    return std::nullopt;
  }
  Error base_error;
  const auto base_payload = base.block_payload(log.rank, &base_error);
  if (!base_payload && !base_error.ok()) {
    // The base's block for this rank exists but is damaged — the wave
    // cannot be packed against it.
    if (error != nullptr) *error = base_error;
    return std::nullopt;
  }
  if (error != nullptr) *error = {};
  return make_wave_block(base_payload, log);
}

}  // namespace cg::store
