// Pluggable cookie-partitioning policy engines.
//
// The paper evaluates one defense — CookieGuard's per-script-origin
// filtering of the first-party jar — but the interesting question is
// comparative: what would Firefox's First-Party Isolation or Chrome's CHIPS
// have done on the same corpus? This module separates *storage*
// (cookies::PartitionedJarStore, a key → RFC 6265 jar map) from *policy*
// (which partition an access lands in, and which cookies an actor may see):
//
//   * NoDefense          — the status-quo single jar; byte-identical to the
//                          pre-policy simulator.
//   * CookieGuardPolicy  — jar behaviour identical to NoDefense; the
//                          CookieGuard *extension* interposes above the jar
//                          (paper §6 changes the API boundary, not storage),
//                          so src/cookieguard/ sits on top unchanged.
//   * FirstPartyIsolation— Firefox `privacy.firstparty.isolate`: every jar
//                          is keyed by the top-level site (firstPartyDomain
//                          origin attribute); an access that cannot name its
//                          first party is an error, with Firefox's exact
//                          message.
//   * Chips              — RFC6265bis `Partitioned` cookies: cross-site
//                          contexts may only store/see cookies carrying the
//                          Partitioned attribute, keyed by the top-level
//                          site; unpartitioned third-party traffic is
//                          blocked.
//
// Engines are stateless and shared: one const instance per kind serves every
// browser on every crawl worker (determinism contract D4 — no mutable
// statics; all state lives in the per-browser jar store).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cookies/cookie.h"
#include "cookies/cookie_jar.h"
#include "cookies/partitioned_store.h"
#include "net/url.h"
#include "webplat/stack_trace.h"

namespace cg::policy {

enum class PolicyKind { kNone, kCookieGuard, kFirstPartyIsolation, kChips };

std::string_view to_string(PolicyKind kind);
/// Parses "none" / "cookieguard" / "fpi" / "chips" (the --policy grammar).
std::optional<PolicyKind> parse_policy(std::string_view name);

/// Firefox's error when FPI is on but an access cannot name its first party
/// (toolkit/components/extensions cookies API, verbatim).
inline constexpr std::string_view kFpiMissingAttributeError =
    "First-Party Isolation is enabled, but the required 'firstPartyDomain' "
    "attribute was not set.";

/// Everything a policy engine may key on for one cookie access. Built by
/// the browser at each API boundary crossing (document.cookie, cookieStore,
/// HTTP attach / Set-Cookie).
struct CookieAccessContext {
  /// eTLD+1 of the top-level document — Firefox's firstPartyDomain, CHIPS's
  /// partition key. Empty models an access with no first-party context
  /// (FPI's error path).
  std::string top_level_site;
  /// URL the access is scoped to: the frame document for script APIs, the
  /// request URL for HTTP.
  net::Url subject_url;
  /// True when subject_url is cross-site to the top-level document.
  bool cross_site = false;
  /// eTLD+1 of the acting script (stack-trace attribution); empty for
  /// HTTP, inline scripts, or browser-internal access.
  std::string script_origin;
  cookies::JarApi api = cookies::JarApi::kScript;
  /// The parsed `Partitioned` attribute (stores only).
  bool partitioned_attribute = false;
};

/// Derives the acting script origin for a context from the capture-time
/// stack, the same attribution the paper's extensions use (§6.2).
std::string script_origin_from_stack(const webplat::StackTrace& stack);

/// Outcome of a store-key decision.
struct StoreDecision {
  bool allowed = false;
  cookies::PartitionKey key;
  /// Why the store was refused (kFpiMissingAttributeError, "unpartitioned
  /// third-party cookie blocked", ...). Empty when allowed.
  std::string error;
  /// True when the refusal is caused by the defense under test (tallied as
  /// a blocked manipulation); false for refusals every engine shares — the
  /// post-third-party-cookie baseline blocks cross-site HTTP cookies under
  /// NoDefense too, and counting those would credit the baseline to the
  /// defense.
  bool defense_block = false;

  static StoreDecision ok(cookies::PartitionKey key_in) {
    StoreDecision d;
    d.allowed = true;
    d.key = std::move(key_in);
    return d;
  }
  static StoreDecision blocked(std::string error_in,
                               bool defense_block_in = false) {
    StoreDecision d;
    d.error = std::move(error_in);
    d.defense_block = defense_block_in;
    return d;
  }
};

/// Outcome of a read-key decision: the partitions a retrieval consults, in
/// order. Empty keys + allowed=false means the context may read nothing
/// (e.g. cross-site under FPI in a post-third-party-cookie browser).
struct ReadDecision {
  bool allowed = false;
  std::vector<cookies::PartitionKey> keys;
  std::string error;
  /// See StoreDecision::defense_block.
  bool defense_block = false;

  static ReadDecision ok(std::vector<cookies::PartitionKey> keys_in) {
    ReadDecision d;
    d.allowed = true;
    d.keys = std::move(keys_in);
    return d;
  }
  static ReadDecision blocked(std::string error_in,
                              bool defense_block_in = false) {
    ReadDecision d;
    d.error = std::move(error_in);
    d.defense_block = defense_block_in;
    return d;
  }
};

/// Where a cross-origin subframe's cookies live under this policy.
enum class FrameJarScope {
  /// Ephemeral per-page jar keyed by frame origin (the simulator's legacy
  /// TCP-style model; NoDefense/CookieGuard keep it for byte-identity).
  kPage,
  /// The browser's partitioned store, under key_for_* of the frame context
  /// (FPI/CHIPS: partitions outlive the page, scoped by first party).
  kBrowser,
};

class PartitionPolicy {
 public:
  virtual ~PartitionPolicy() = default;

  virtual PolicyKind kind() const = 0;

  /// Which partition a Set-Cookie/write in `ctx` lands in, or why not.
  virtual StoreDecision key_for_store(const CookieAccessContext& ctx)
      const = 0;

  /// Which partitions a retrieval in `ctx` consults, in order.
  virtual ReadDecision key_for_read(const CookieAccessContext& ctx) const = 0;

  /// Per-cookie visibility filter applied after partition selection —
  /// CHIPS hides unpartitioned cookies from cross-site contexts even when
  /// a partition is readable.
  virtual bool visible(const cookies::Cookie& cookie,
                       const CookieAccessContext& ctx) const = 0;

  /// Where cross-origin subframe cookies live under this policy.
  virtual FrameJarScope frame_jar_scope() const = 0;
};

/// The shared stateless engine for `kind`. Never null; valid for the
/// program's lifetime.
const PartitionPolicy& engine_for(PolicyKind kind);

}  // namespace cg::policy
