#include "policy/partition_policy.h"

#include "net/psl.h"

namespace cg::policy {
namespace {

constexpr std::string_view kThirdPartyPhasedOut =
    "third-party cookies are phased out";
constexpr std::string_view kUnpartitionedThirdParty =
    "unpartitioned third-party cookie blocked";

cookies::PartitionKey fpi_key(const std::string& first_party_domain) {
  return "fpi:" + first_party_domain;
}

cookies::PartitionKey chips_key(const std::string& top_level_site) {
  return "chips:" + top_level_site;
}

/// Status-quo single jar: everything first-party lands in the default
/// partition; cross-site traffic carries no cookies (the simulator models a
/// post-third-party-cookie browser, §1). NoDefense and CookieGuardPolicy
/// share this storage behaviour — CookieGuard changes the API boundary
/// above the jar, never the jar itself (§6).
class SingleJarPolicy : public PartitionPolicy {
 public:
  StoreDecision key_for_store(const CookieAccessContext& ctx) const override {
    if (ctx.cross_site) {
      return StoreDecision::blocked(std::string(kThirdPartyPhasedOut));
    }
    return StoreDecision::ok(cookies::PartitionKey());
  }

  ReadDecision key_for_read(const CookieAccessContext& ctx) const override {
    if (ctx.cross_site) {
      return ReadDecision::blocked(std::string(kThirdPartyPhasedOut));
    }
    return ReadDecision::ok({cookies::PartitionKey()});
  }

  bool visible(const cookies::Cookie&,
               const CookieAccessContext&) const override {
    return true;
  }

  FrameJarScope frame_jar_scope() const override {
    return FrameJarScope::kPage;
  }
};

class NoDefense final : public SingleJarPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kNone; }
};

class CookieGuardPolicy final : public SingleJarPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kCookieGuard; }
};

/// Firefox First-Party Isolation: every cookie jar is double-keyed by the
/// top-level site (the firstPartyDomain origin attribute, SNIPPETS.md
/// snippets 1-2). Cross-site embeds still get cookies — isolated into the
/// embedding site's partition rather than blocked — and an access that
/// cannot name its first party is an error with Firefox's exact message.
class FirstPartyIsolation final : public PartitionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kFirstPartyIsolation; }

  StoreDecision key_for_store(const CookieAccessContext& ctx) const override {
    if (ctx.top_level_site.empty()) {
      return StoreDecision::blocked(std::string(kFpiMissingAttributeError),
                                    /*defense_block_in=*/true);
    }
    return StoreDecision::ok(fpi_key(ctx.top_level_site));
  }

  ReadDecision key_for_read(const CookieAccessContext& ctx) const override {
    if (ctx.top_level_site.empty()) {
      return ReadDecision::blocked(std::string(kFpiMissingAttributeError),
                                   /*defense_block_in=*/true);
    }
    return ReadDecision::ok({fpi_key(ctx.top_level_site)});
  }

  bool visible(const cookies::Cookie&,
               const CookieAccessContext&) const override {
    return true;  // partition separation IS the isolation
  }

  FrameJarScope frame_jar_scope() const override {
    return FrameJarScope::kBrowser;
  }
};

/// RFC6265bis + CHIPS: first-party cookies stay in the default partition;
/// cookies carrying `Partitioned` land in a per-top-level-site partition;
/// cross-site contexts may only store/see partitioned cookies (snippet 3's
/// retrieve/store(url, partition_key, flags) shape).
class Chips final : public PartitionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kChips; }

  StoreDecision key_for_store(const CookieAccessContext& ctx) const override {
    if (ctx.partitioned_attribute) {
      return StoreDecision::ok(chips_key(ctx.top_level_site));
    }
    if (ctx.cross_site) {
      // Cross-site HTTP cookies are already dead in the baseline browser;
      // only script stores in embedded contexts are newly blocked by CHIPS.
      return StoreDecision::blocked(
          std::string(kUnpartitionedThirdParty),
          /*defense_block_in=*/ctx.api == cookies::JarApi::kScript);
    }
    return StoreDecision::ok(cookies::PartitionKey());
  }

  ReadDecision key_for_read(const CookieAccessContext& ctx) const override {
    if (ctx.cross_site) {
      return ReadDecision::ok({chips_key(ctx.top_level_site)});
    }
    // Top-level contexts see their unpartitioned cookies plus the cookies
    // partitioned to themselves.
    return ReadDecision::ok(
        {cookies::PartitionKey(), chips_key(ctx.top_level_site)});
  }

  bool visible(const cookies::Cookie& cookie,
               const CookieAccessContext& ctx) const override {
    // Cross-site, only Partitioned cookies exist; belt and braces on top of
    // the partition-key separation.
    return !ctx.cross_site || cookie.partitioned;
  }

  FrameJarScope frame_jar_scope() const override {
    return FrameJarScope::kBrowser;
  }
};

}  // namespace

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone:
      return "none";
    case PolicyKind::kCookieGuard:
      return "cookieguard";
    case PolicyKind::kFirstPartyIsolation:
      return "fpi";
    case PolicyKind::kChips:
      return "chips";
  }
  return "none";
}

std::optional<PolicyKind> parse_policy(std::string_view name) {
  if (name == "none") return PolicyKind::kNone;
  if (name == "cookieguard") return PolicyKind::kCookieGuard;
  if (name == "fpi") return PolicyKind::kFirstPartyIsolation;
  if (name == "chips") return PolicyKind::kChips;
  return std::nullopt;
}

std::string script_origin_from_stack(const webplat::StackTrace& stack) {
  const auto url = stack.last_external_script_url();
  if (!url) return {};
  const auto parsed = net::Url::parse(*url);
  if (!parsed) return {};
  return net::etld_plus_one(parsed->host());
}

const PartitionPolicy& engine_for(PolicyKind kind) {
  // Stateless const singletons: shareable across crawl workers, no mutable
  // state (determinism contract D4).
  static const NoDefense none;
  static const CookieGuardPolicy cookieguard;
  static const FirstPartyIsolation fpi;
  static const Chips chips;
  switch (kind) {
    case PolicyKind::kNone:
      return none;
    case PolicyKind::kCookieGuard:
      return cookieguard;
    case PolicyKind::kFirstPartyIsolation:
      return fpi;
    case PolicyKind::kChips:
      return chips;
  }
  return none;
}

}  // namespace cg::policy
