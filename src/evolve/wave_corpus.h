// Wave N of an evolving corpus, served through the CorpusView interface.
//
// WaveCorpus composes a StreamingCorpus (the shared vendor ecosystem +
// on-demand base generation) with a WavePlan (the pure evolution schedule):
// site_visit(i) regenerates the slot's current occupant — the original site
// for generation 0, a churn replacement otherwise — then replays every
// surviving mutation from the occupant's first wave to this one, oldest
// first, and only then applies defer_cross_actions. Wave 0 is byte-
// identical to the StreamingCorpus (and therefore to the materialized
// Corpus); a site no decision ever touched produces byte-identical
// blueprints in every wave, which is what makes its crawled visit logs
// byte-identical across waves and its delta-archive entry a zero-byte
// "inherited" record (src/store/chain.h).
#pragma once

#include <memory>

#include "browser/catalog.h"
#include "corpus/corpus_view.h"
#include "corpus/streaming_corpus.h"
#include "evolve/wave_plan.h"

namespace cg::evolve {

class WaveCorpus : public corpus::CorpusView {
 public:
  WaveCorpus(corpus::CorpusParams corpus_params, EvolutionParams evolution,
             int wave)
      : base_(corpus_params),
        plan_(evolution, corpus_params.seed),
        wave_(wave < 0 ? 0 : wave) {}

  int size() const override { return base_.size(); }
  const corpus::CorpusParams& params() const override {
    return base_.params();
  }
  const entities::EntityMap& entities() const override {
    return base_.entities();
  }

  /// Generates the wave-`wave()` occupant of `index`'s rank slot, with all
  /// surviving mutations applied. Thread-safe; pure in (corpus params,
  /// evolution params, wave, index).
  corpus::SiteVisit site_visit(int index) const override;

  int wave() const { return wave_; }
  const WavePlan& plan() const { return plan_; }
  const corpus::StreamingCorpus& base() const { return base_; }

 private:
  corpus::StreamingCorpus base_;
  WavePlan plan_;
  int wave_;
};

}  // namespace cg::evolve
