#include "evolve/wave_corpus.h"

#include <utility>

#include "corpus/site_generator.h"
#include "evolve/mutations.h"
#include "script/rng.h"

namespace cg::evolve {
namespace {

/// Generation-g occupant seed for a rank slot. g = 0 must reduce to the
/// base corpus seed so wave 0 is byte-identical to the un-evolved corpus.
std::uint64_t occupant_seed(std::uint64_t corpus_seed, int generation) {
  return corpus_seed ^
         (static_cast<std::uint64_t>(generation) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

corpus::SiteVisit WaveCorpus::site_visit(int index) const {
  const int rank = index + 1;
  const auto& params = base_.params();

  // One pass over the slot's history: its current generation and the wave
  // the current occupant arrived in (mutations before that wave died with
  // the previous occupant).
  int generation = 0;
  int occupant_since = 0;
  for (int w = 1; w <= wave_; ++w) {
    if (plan_.decide(rank, w).churned) {
      ++generation;
      occupant_since = w;
    }
  }

  script::Rng site_rng = script::Rng::fork_at(
      occupant_seed(params.seed, generation),
      static_cast<std::uint64_t>(rank - 1), static_cast<std::uint64_t>(rank));
  auto overlay = std::make_shared<browser::ScriptCatalog>();
  overlay->set_parent(&base_.raw_catalog());
  auto bp = std::make_shared<corpus::SiteBlueprint>(
      corpus::generate_site(rank, site_rng, base_.ecosystem(), *overlay,
                            params, generation));

  // Replay the occupant's surviving mutations, oldest wave first, against
  // the raw (untransformed) overlay.
  for (int w = occupant_since + 1; w <= wave_; ++w) {
    const SiteWaveDecision decision = plan_.decide(rank, w);
    if (!decision.mutated()) continue;
    script::Rng mutation_rng(plan_.mutation_seed(rank, w));
    apply_mutations(decision, mutation_rng, base_.ecosystem(), params, *bp,
                    *overlay);
  }

  overlay->transform(corpus::defer_cross_actions);
  overlay->set_parent(&base_.cooked_catalog());
  return corpus::SiteVisit{std::move(bp), std::move(overlay)};
}

}  // namespace cg::evolve
