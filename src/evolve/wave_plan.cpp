#include "evolve/wave_plan.h"

#include "script/rng.h"

namespace cg::evolve {
namespace {

/// Per-(rank, wave) decision seed. The golden-ratio multipliers keep rank
/// and wave contributions from cancelling (the same construction the
/// crawler's visit_seed_for and fault::FaultPlan use).
std::uint64_t decision_seed(std::uint64_t seed, std::uint64_t corpus_seed,
                            int rank, int wave) {
  return seed ^ corpus_seed ^
         (0xE701EULL + static_cast<std::uint64_t>(rank) * 2654435761ULL +
          static_cast<std::uint64_t>(wave) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

SiteWaveDecision WavePlan::decide(int rank, int wave) const {
  SiteWaveDecision d;
  if (wave <= 0) return d;
  script::Rng rng(decision_seed(params_.seed, corpus_seed_, rank, wave));
  // Fixed draw order: every decision consumes exactly one draw whether or
  // not an earlier flag fired, so the flags are independent and the
  // schedule never shifts when a rate is tuned.
  d.churned = rng.chance(params_.site_churn_rate);
  d.vendor_swap = rng.chance(params_.vendor_swap_rate);
  d.consent_flip = rng.chance(params_.consent_flip_rate);
  d.cookie_renewal = rng.chance(params_.cookie_renewal_rate);
  d.fp_rotation = rng.chance(params_.fp_rotation_rate);
  return d;
}

int WavePlan::generation(int rank, int wave) const {
  int g = 0;
  for (int w = 1; w <= wave; ++w) {
    if (decide(rank, w).churned) ++g;
  }
  return g;
}

std::uint64_t WavePlan::mutation_seed(int rank, int wave) const {
  // Distinct stream from decide()'s: mutations must not replay the
  // decision draws.
  return decision_seed(params_.seed, corpus_seed_, rank, wave) ^
         0xD1B54A32D192ED03ULL;
}

}  // namespace cg::evolve
