// Seeded corpus evolution: the pure per-site schedule of what changes
// between crawl waves.
//
// Longitudinal measurement studies the same ranking at times t0, t1, ... —
// between waves, vendors get swapped for competitors, consent managers
// appear/disappear or the visitor's decline decision changes, persistent
// server cookies expire and are re-issued, first-party bundles ship
// releases with new cookie footprints, and whole sites churn out of the
// ranking, their rank slots re-filled by different sites.
//
// WavePlan is the evolution analogue of fault::FaultPlan: decide(rank,
// wave) is a pure function of (evolution seed, corpus seed, rank, wave), so
// wave N's corpus can be generated site-by-site, in any order, on any
// thread count, and two independently constructed plans agree byte-for-
// byte. Wave 0 is the base corpus; decide() describes what happened
// *between* wave-1 and wave, so it is never consulted for wave 0.
#pragma once

#include <cstdint>

namespace cg::evolve {

struct EvolutionParams {
  /// Master evolution seed; folded with the corpus seed so the same
  /// schedule parameters evolve distinct corpora differently.
  std::uint64_t seed = 0xE401E5ULL;

  /// P(rank slot churns between consecutive waves: the occupant drops out
  /// of the ranking and a different site takes the position). Tranco-style
  /// lists turn over a few percent per month at the head.
  double site_churn_rate = 0.02;
  /// P(site swaps one directly-included vendor for a competitor).
  double vendor_swap_rate = 0.10;
  /// P(consent state flips: the manager is added/removed/replaced, or the
  /// visitor's decline decision changes — which changes the sweep list the
  /// manager deletes).
  double consent_flip_rate = 0.04;
  /// P(the site's optional persistent server cookies expire and are
  /// re-rolled — Max-Age cookies renewing between waves).
  double cookie_renewal_rate = 0.12;
  /// P(the first-party bundle ships a release with a different cookie
  /// footprint).
  double fp_rotation_rate = 0.05;
};

/// What happened to one rank slot between wave-1 and wave. `churned`
/// supersedes the mutation flags: a replacement site starts fresh, so
/// same-wave mutations are meaningless for it (decide() still draws them —
/// the stream consumes a fixed number of decisions per (rank, wave) so
/// later draws never shift).
struct SiteWaveDecision {
  bool churned = false;
  bool vendor_swap = false;
  bool consent_flip = false;
  bool cookie_renewal = false;
  bool fp_rotation = false;

  bool mutated() const {
    return vendor_swap || consent_flip || cookie_renewal || fp_rotation;
  }
  bool any() const { return churned || mutated(); }
};

class WavePlan {
 public:
  WavePlan(EvolutionParams params, std::uint64_t corpus_seed)
      : params_(params), corpus_seed_(corpus_seed) {}

  const EvolutionParams& params() const { return params_; }
  std::uint64_t corpus_seed() const { return corpus_seed_; }

  /// The evolution step `rank` took between wave-1 and wave (wave >= 1).
  /// Pure in (params, corpus_seed, rank, wave).
  SiteWaveDecision decide(int rank, int wave) const;

  /// Churn generation of the occupant of `rank` at `wave`: the number of
  /// waves in [1, wave] that churned the slot. 0 = the original site.
  int generation(int rank, int wave) const;

  /// The seed the mutation RNG for (rank, wave) derives from — exposed so
  /// WaveCorpus and tests agree on one derivation.
  std::uint64_t mutation_seed(int rank, int wave) const;

 private:
  EvolutionParams params_;
  std::uint64_t corpus_seed_ = 0;
};

}  // namespace cg::evolve
