// The concrete per-site mutations a WavePlan decision applies.
//
// Each mutation edits a freshly generated (raw, untransformed) blueprint +
// per-site catalog overlay in place, drawing every random choice from the
// wave's mutation RNG. Mutations are applied in wave order — a vendor
// swapped in at wave 1 can be swapped out again at wave 3 — and each
// consumes a fixed draw pattern so the composition stays deterministic.
#pragma once

#include "browser/catalog.h"
#include "corpus/corpus_view.h"
#include "corpus/ecosystem.h"
#include "corpus/params.h"
#include "corpus/site_blueprint.h"
#include "evolve/wave_plan.h"
#include "script/rng.h"

namespace cg::evolve {

/// Applies the non-churn mutations of `decision` to `bp`/`overlay` (the
/// site's raw per-site catalog). Call once per evolving wave, oldest first,
/// before defer_cross_actions runs on the overlay.
void apply_mutations(const SiteWaveDecision& decision, script::Rng& rng,
                     const corpus::Ecosystem& ecosystem,
                     const corpus::CorpusParams& params,
                     corpus::SiteBlueprint& bp,
                     browser::ScriptCatalog& overlay);

}  // namespace cg::evolve
