#include "evolve/mutations.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "corpus/site_generator.h"

namespace cg::evolve {
namespace {

/// "ga-legacy+dims" → "ga-legacy": per-deployment variants evolve as their
/// base vendor.
std::string base_id(const std::string& id) {
  return id.substr(0, id.find('+'));
}

bool is_consent_manager(const corpus::Ecosystem& ecosystem,
                        const std::string& id) {
  const std::string base = base_id(id);
  for (const auto& [cmp_id, share] : ecosystem.consent_managers) {
    if (cmp_id == base) return true;
  }
  return false;
}

bool is_vendor(const corpus::Ecosystem& ecosystem, const std::string& id) {
  const std::string base = base_id(id);
  for (const auto& vendor : ecosystem.vendors) {
    if (vendor.id == base) return true;
  }
  return false;
}

/// Share-weighted consent-manager pick, the same scheme the generator uses.
std::string pick_consent_manager(const corpus::Ecosystem& ecosystem,
                                 const corpus::CorpusParams& params,
                                 script::Rng& rng) {
  double roll = rng.uniform();
  std::string cmp_id = ecosystem.consent_managers.back().first;
  for (const auto& [id, share] : ecosystem.consent_managers) {
    roll -= share;
    if (roll <= 0) {
      cmp_id = id;
      break;
    }
  }
  if (rng.chance(params.consent_decline_rate)) cmp_id += "+decline";
  return cmp_id;
}

/// A site swaps one directly-included vendor for a competitor that is not
/// already on the page.
void vendor_swap(script::Rng& rng, const corpus::Ecosystem& ecosystem,
                 corpus::SiteBlueprint& bp) {
  auto& ids = bp.doc.script_ids;
  std::vector<std::size_t> swappable;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (is_vendor(ecosystem, ids[i])) swappable.push_back(i);
  }
  if (swappable.empty()) return;
  const std::size_t victim = swappable[rng.below(swappable.size())];

  std::vector<const corpus::VendorInfo*> replacements;
  for (const auto& vendor : ecosystem.vendors) {
    const bool on_page =
        std::any_of(ids.begin(), ids.end(), [&](const std::string& id) {
          return base_id(id) == vendor.id;
        });
    if (!on_page) replacements.push_back(&vendor);
  }
  if (replacements.empty()) return;
  ids[victim] = replacements[rng.below(replacements.size())]->id;
}

/// The consent state flips: the manager is toggled between accept/decline
/// sweeps, replaced by a competitor, removed, or (when absent) installed.
void consent_flip(script::Rng& rng, const corpus::Ecosystem& ecosystem,
                  const corpus::CorpusParams& params,
                  corpus::SiteBlueprint& bp) {
  auto& ids = bp.doc.script_ids;
  auto it = std::find_if(ids.begin(), ids.end(), [&](const std::string& id) {
    return is_consent_manager(ecosystem, id);
  });
  if (it == ids.end()) {
    // A manager appears: regulation pressure adds CMPs over time. The fp
    // bundle keeps slot 0, like the generator's document order.
    ids.insert(ids.size() > 1 ? ids.begin() + 1 : ids.end(),
               pick_consent_manager(ecosystem, params, rng));
    return;
  }
  const double roll = rng.uniform();
  if (roll < 0.5) {
    // The visitor's decision changes — the most common wave-over-wave flip.
    const std::string base = base_id(*it);
    *it = *it == base ? base + "+decline" : base;
  } else if (roll < 0.8) {
    const bool declined = it->find("+decline") != std::string::npos;
    *it = pick_consent_manager(ecosystem, params, rng);
    if (declined && it->find("+decline") == std::string::npos) {
      *it += "+decline";
    }
  } else {
    ids.erase(it);
  }
}

/// The site's optional persistent server cookies expire and are re-issued;
/// rates match the generator's originals.
void cookie_renewal(script::Rng& rng, corpus::SiteBlueprint& bp) {
  bp.http_cookie_templates.clear();
  bp.http_cookie_templates.push_back("sid={hex:24}; Path=/; HttpOnly");
  if (rng.chance(0.5)) {
    bp.http_cookie_templates.push_back("region=us-east-1; Path=/");
  }
  if (rng.chance(0.3)) {
    bp.http_cookie_templates.push_back(
        "fp_srv_uid={hex:16}; Path=/; Max-Age=31536000");
  }
}

/// The first-party bundle ships a release with a new cookie footprint.
/// Purely-static bundles (the paper's never-touch-document.cookie sites)
/// stay static — their share is a calibrated population statistic.
void fp_rotation(script::Rng& rng, const corpus::CorpusParams& params,
                 corpus::SiteBlueprint& bp, browser::ScriptCatalog& overlay) {
  if (bp.fp_cookie_names.empty()) return;
  bp.fp_cookie_names.clear();
  overlay.add(corpus::make_fp_bundle(bp.rank, rng, params,
                                     /*cookieless=*/false,
                                     bp.fp_cookie_names));
}

}  // namespace

void apply_mutations(const SiteWaveDecision& decision, script::Rng& rng,
                     const corpus::Ecosystem& ecosystem,
                     const corpus::CorpusParams& params,
                     corpus::SiteBlueprint& bp,
                     browser::ScriptCatalog& overlay) {
  if (decision.vendor_swap) vendor_swap(rng, ecosystem, bp);
  if (decision.consent_flip) consent_flip(rng, ecosystem, params, bp);
  if (decision.cookie_renewal) cookie_renewal(rng, bp);
  if (decision.fp_rotation) fp_rotation(rng, params, bp, overlay);
}

}  // namespace cg::evolve
