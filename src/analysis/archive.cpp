#include "analysis/archive.h"

namespace cg::analysis {

bool analyze_archive(const store::Reader& reader, Analyzer& analyzer,
                     store::Error* error) {
  return reader.for_each(
      [&analyzer](instrument::VisitLog&& log) { analyzer.ingest(log); },
      error);
}

bool analyze_wave(const store::WaveChain& chain, int wave, Analyzer& analyzer,
                  store::Error* error) {
  return chain.for_each(
      wave,
      [&analyzer](instrument::VisitLog&& log) { analyzer.ingest(log); },
      error);
}

}  // namespace cg::analysis
