// Analysis-from-archive: the "analyze many times" half of the two-phase
// pipeline. A CGAR archive replayed through an Analyzer reproduces the live
// crawl's aggregates exactly — the crawler archives every site the sink
// saw, retained and excluded alike, and Analyzer::ingest applies the same
// completeness filter either way.
#pragma once

#include "analysis/analyzer.h"
#include "store/chain.h"
#include "store/reader.h"

namespace cg::analysis {

/// Streams every archived site into `analyzer` in rank order. False (with
/// `error` naming the taxonomy class) on the first corrupt block — partial
/// aggregates from a corrupt archive are worse than no aggregates, so
/// callers should treat false as "discard the analyzer".
bool analyze_archive(const store::Reader& reader, Analyzer& analyzer,
                     store::Error* error = nullptr);

/// Same, over one wave of a base + delta chain: every site of `wave` is
/// materialized through the chain (inherited ranks resolve to earlier
/// waves) and folded in rank order. The aggregates are byte-identical to
/// analyzing an independently packed full archive of the same wave.
bool analyze_wave(const store::WaveChain& chain, int wave, Analyzer& analyzer,
                  store::Error* error = nullptr);

}  // namespace cg::analysis
