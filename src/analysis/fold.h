// The analysis pipeline's algebra: a streaming per-site fold plus a
// mergeable summary.
//
// fold_visit() maps one VisitLog to a SiteSummary — a pure function of the
// visit, the entity map, and the options. SiteSummary::merge() folds
// summaries together in site-rank order; counters add, pair/domain maps
// union, and per-pair creation metadata keeps the earlier summary's value
// (first-setter-wins, the same rule a sequential ingest applies). Batch
// analysis (Analyzer::ingest, analyze_archive) and the online serving tier
// (src/serve/) are both just this fold + merge:
//
//   batch:  summary = fold(v0) ⊕ fold(v1) ⊕ ... ⊕ fold(vN)   (one pass)
//   serve:  the ⊕-prefix is precomputed at load; per-site queries fold a
//           single decoded block, aggregate queries read the prefix.
//
// Because merge is associative and rank-ordered merges of disjoint shards
// equal a sequential fold (the PR 2 parallel-crawl identity, proven at 20k
// sites), one code path answers every consumer.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cookies/cookie.h"
#include "entities/entity_map.h"
#include "instrument/records.h"

namespace cg::analysis {

/// Identity of a cookie in the paper's sense: (name, domain of the script
/// that set it) — footnote 2.
struct CookiePair {
  std::string name;
  std::string owner_domain;
  auto operator<=>(const CookiePair&) const = default;
};

/// Per-pair aggregates. Entity maps count the number of *sites* on which
/// that entity performed the action (used for top-3 rankings).
struct PairStats {
  cookies::CookieSource created_via = cookies::CookieSource::kDocumentCookie;
  int sites_set = 0;
  std::map<std::string, int> exfiltrator_entities;
  std::map<std::string, int> destination_entities;
  std::map<std::string, int> overwriter_entities;
  std::map<std::string, int> deleter_entities;
  bool exfiltrated() const { return !exfiltrator_entities.empty(); }
  bool overwritten() const { return !overwriter_entities.empty(); }
  bool deleted() const { return !deleter_entities.empty(); }
};

/// Per-script-domain aggregates (Figures 2 and 6).
struct DomainStats {
  std::set<CookiePair> exfiltrated_pairs;
  std::set<CookiePair> overwritten_pairs;
  std::set<CookiePair> deleted_pairs;
};

/// Everything the benches print.
struct Totals {
  int sites_crawled = 0;
  int sites_complete = 0;

  // ---- §5.1 prevalence -----------------------------------------------
  int sites_with_third_party = 0;
  long long third_party_script_count = 0;  // distinct per site, summed
  long long third_party_ad_tracking_count = 0;
  long long tp_cookies_set = 0;  // per-site cookie set counts
  long long fp_cookies_set = 0;
  long long direct_inclusions = 0;
  long long indirect_inclusions = 0;
  long long indirect_ad_tracking = 0;

  // ---- §5.2 API usage ---------------------------------------------------
  int sites_using_document_cookie = 0;
  int sites_using_cookie_store = 0;
  std::set<std::string> store_cookie_names;
  long long store_setting_scripts = 0;
  std::set<std::string> store_script_domains;

  // ---- Table 1 site counters ---------------------------------------------
  int sites_doc_exfil = 0;
  int sites_doc_overwrite = 0;
  int sites_doc_delete = 0;
  int sites_store_exfil = 0;
  int sites_store_overwrite = 0;
  int sites_store_delete = 0;

  // ---- §5.5 overwrite attribute diffs ------------------------------------
  long long cross_overwrites = 0;
  long long overwrite_value_changed = 0;
  long long overwrite_expires_changed = 0;
  long long overwrite_domain_changed = 0;
  long long overwrite_path_changed = 0;

  // ---- §5.5 tracking-lifespan extension ----------------------------------
  // "overwriting is primarily used to manipulate the content and lifespan of
  // cookies ... to extend tracking durations beyond the original intent".
  long long overwrite_expiry_extended = 0;   // new expiry later than old
  long long overwrite_expiry_shortened = 0;  // new expiry earlier
  /// Total days of lifetime added by cross-domain expiry extensions.
  double expiry_days_added = 0;

  // ---- §8 DOM pilot -------------------------------------------------------
  int sites_with_cross_dom_modification = 0;

  // ---- attribution accuracy (simulator-only ground truth) ---------------
  long long attributed_sets = 0;
  long long attribution_correct = 0;
  long long attribution_unknown = 0;

  // ---- Table 4 timings ----------------------------------------------------
  std::vector<TimeMillis> dom_content_loaded;
  std::vector<TimeMillis> dom_interactive;
  std::vector<TimeMillis> load_event;

  long long script_set_events = 0;
  long long unique_setter_scripts = 0;

  /// Folds a later shard's totals into this one: counters add, name/domain
  /// sets union, timing vectors concatenate in shard order. Exception:
  /// `unique_setter_scripts` is summed here (script URLs can repeat across
  /// shards, so the sum is an upper bound) — SiteSummary::merge recomputes
  /// it exactly from the merged URL set.
  void merge(Totals&& other);
};

struct AnalyzerOptions {
  /// Match Base64/MD5/SHA1-encoded identifier forms in addition to raw
  /// (paper §4.3). Disable for the D5 ablation: raw-only detection misses
  /// every encoded exfiltration flow.
  bool match_encoded_identifiers = true;
  /// Keep only the Totals counters: fold_visit discards the per-pair,
  /// per-domain, and setter-URL maps after folding each visit, so the
  /// running aggregate stays O(1) in site count instead of O(sites) — the
  /// 1M-site streaming-crawl configuration. `unique_setter_scripts` reads 0
  /// in this mode (it is recomputed from the — now empty — URL set), and
  /// the ranked views (Tables 2/5, Figures 2/6) are empty.
  bool totals_only = false;
};

/// The complete aggregate state of an analysis — over one visit (the result
/// of fold_visit), one shard, or a whole crawl. Merging summaries of
/// disjoint site ranges in rank order reproduces a sequential fold exactly.
struct SiteSummary {
  Totals totals;
  std::map<CookiePair, PairStats> pairs;
  std::map<std::string, DomainStats> domains;
  std::set<std::string> setter_script_urls;

  /// Folds `other` into this summary. Precondition: `other` summarizes a
  /// *later*, disjoint site-rank range of the same corpus, folded with the
  /// same entity map and options. Cookie ownership is resolved per visit,
  /// so merged aggregates equal a sequential fold of the same visits in
  /// site order: counters add, pair/domain maps union (with counts added),
  /// and creation metadata keeps the earlier range's value — the same
  /// first-setter-wins rule the sequential path applies.
  void merge(SiteSummary&& other);

  // ---- ranked views (Tables 1/2/5, Figures 2/6) -------------------------

  /// Unique pair counts by creating API.
  int pair_count(cookies::CookieSource via) const;
  int exfiltrated_pair_count(cookies::CookieSource via) const;
  int overwritten_pair_count(cookies::CookieSource via) const;
  int deleted_pair_count(cookies::CookieSource via) const;

  /// Rows for Table 2 (top exfiltrated) / Table 5 (top manipulated),
  /// sorted by destination-entity (resp. manipulator-entity) count.
  struct RankedPair {
    CookiePair pair;
    const PairStats* stats;
  };
  std::vector<RankedPair> top_exfiltrated(std::size_t n) const;
  std::vector<RankedPair> top_overwritten(std::size_t n) const;
  std::vector<RankedPair> top_deleted(std::size_t n) const;

  /// Rows for Figures 2 / 6: (domain, unique-cookie count).
  std::vector<std::pair<std::string, int>> top_exfiltrator_domains(
      std::size_t n) const;
  std::vector<std::pair<std::string, int>> top_overwriter_domains(
      std::size_t n) const;
  std::vector<std::pair<std::string, int>> top_deleter_domains(
      std::size_t n) const;
};

/// The per-site fold: one visit's logs → one SiteSummary. Pure function of
/// its arguments (no hidden state, no clock, no randomness); incomplete
/// visits only contribute crawl counters and timings (the paper drops them
/// too). Cookie ownership, cross-domain attribution, and exfiltration
/// matching are all resolved within the visit, which is what makes the
/// result mergeable.
SiteSummary fold_visit(const entities::EntityMap& entities,
                       const AnalyzerOptions& options,
                       const instrument::VisitLog& log);

/// Returns the top-`n` keys of a frequency map, highest count first.
std::vector<std::pair<std::string, int>> top_counts(
    const std::map<std::string, int>& counts, std::size_t n);

}  // namespace cg::analysis
