#include "analysis/fold.h"

#include <algorithm>
#include <functional>

#include "crypto/base64.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "net/query.h"
#include "net/url.h"
#include "script/interpreter.h"

namespace cg::analysis {
namespace {

using cookies::CookieSource;
using Type = cookies::CookieChange::Type;

// A set/overwrite/delete event on the per-visit ownership timeline.
struct TimelineEvent {
  TimeMillis time;
  bool from_http;
  const instrument::ScriptCookieSetRecord* script = nullptr;
  const instrument::HttpCookieSetRecord* http = nullptr;
};

}  // namespace

std::vector<std::pair<std::string, int>> top_counts(
    const std::map<std::string, int>& counts, std::size_t n) {
  std::vector<std::pair<std::string, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

void Totals::merge(Totals&& other) {
  sites_crawled += other.sites_crawled;
  sites_complete += other.sites_complete;

  sites_with_third_party += other.sites_with_third_party;
  third_party_script_count += other.third_party_script_count;
  third_party_ad_tracking_count += other.third_party_ad_tracking_count;
  tp_cookies_set += other.tp_cookies_set;
  fp_cookies_set += other.fp_cookies_set;
  direct_inclusions += other.direct_inclusions;
  indirect_inclusions += other.indirect_inclusions;
  indirect_ad_tracking += other.indirect_ad_tracking;

  sites_using_document_cookie += other.sites_using_document_cookie;
  sites_using_cookie_store += other.sites_using_cookie_store;
  store_cookie_names.merge(other.store_cookie_names);
  store_setting_scripts += other.store_setting_scripts;
  store_script_domains.merge(other.store_script_domains);

  sites_doc_exfil += other.sites_doc_exfil;
  sites_doc_overwrite += other.sites_doc_overwrite;
  sites_doc_delete += other.sites_doc_delete;
  sites_store_exfil += other.sites_store_exfil;
  sites_store_overwrite += other.sites_store_overwrite;
  sites_store_delete += other.sites_store_delete;

  cross_overwrites += other.cross_overwrites;
  overwrite_value_changed += other.overwrite_value_changed;
  overwrite_expires_changed += other.overwrite_expires_changed;
  overwrite_domain_changed += other.overwrite_domain_changed;
  overwrite_path_changed += other.overwrite_path_changed;

  overwrite_expiry_extended += other.overwrite_expiry_extended;
  overwrite_expiry_shortened += other.overwrite_expiry_shortened;
  expiry_days_added += other.expiry_days_added;

  sites_with_cross_dom_modification += other.sites_with_cross_dom_modification;

  attributed_sets += other.attributed_sets;
  attribution_correct += other.attribution_correct;
  attribution_unknown += other.attribution_unknown;

  dom_content_loaded.insert(dom_content_loaded.end(),
                            other.dom_content_loaded.begin(),
                            other.dom_content_loaded.end());
  dom_interactive.insert(dom_interactive.end(), other.dom_interactive.begin(),
                         other.dom_interactive.end());
  load_event.insert(load_event.end(), other.load_event.begin(),
                    other.load_event.end());

  script_set_events += other.script_set_events;
  unique_setter_scripts += other.unique_setter_scripts;  // upper bound; see .h
}

void SiteSummary::merge(SiteSummary&& other) {
  totals.merge(std::move(other.totals));

  for (auto& [pair, stats] : other.pairs) {
    auto [it, inserted] = pairs.try_emplace(pair, std::move(stats));
    if (inserted) continue;
    PairStats& mine = it->second;
    // created_via stays ours: the earlier range recorded the pair first,
    // exactly as a sequential fold would have.
    mine.sites_set += stats.sites_set;
    for (const auto& [entity, n] : stats.exfiltrator_entities) {
      mine.exfiltrator_entities[entity] += n;
    }
    for (const auto& [entity, n] : stats.destination_entities) {
      mine.destination_entities[entity] += n;
    }
    for (const auto& [entity, n] : stats.overwriter_entities) {
      mine.overwriter_entities[entity] += n;
    }
    for (const auto& [entity, n] : stats.deleter_entities) {
      mine.deleter_entities[entity] += n;
    }
  }

  for (auto& [domain, stats] : other.domains) {
    auto [it, inserted] = domains.try_emplace(domain, std::move(stats));
    if (inserted) continue;
    it->second.exfiltrated_pairs.merge(stats.exfiltrated_pairs);
    it->second.overwritten_pairs.merge(stats.overwritten_pairs);
    it->second.deleted_pairs.merge(stats.deleted_pairs);
  }

  setter_script_urls.merge(other.setter_script_urls);
  totals.unique_setter_scripts =
      static_cast<long long>(setter_script_urls.size());
}

SiteSummary fold_visit(const entities::EntityMap& entities,
                       const AnalyzerOptions& options,
                       const instrument::VisitLog& log) {
  SiteSummary out;
  Totals& totals = out.totals;
  ++totals.sites_crawled;

  // Timings are collected for every crawled site (Table 4 uses all visits).
  totals.dom_content_loaded.push_back(log.landing_timings.dom_content_loaded);
  totals.dom_interactive.push_back(log.landing_timings.dom_interactive);
  totals.load_event.push_back(log.landing_timings.load_event);

  // ---- §5.1 third-party prevalence ------------------------------------
  // The paper reports these over all 20,000 sites, not just the 14,917 with
  // complete logs.
  std::set<std::string> tp_script_urls;
  std::set<std::string> tp_ad_tracking_urls;
  for (const auto& inc : log.includes) {
    if (inc.is_inline || inc.domain.empty() || inc.domain == log.site) {
      continue;
    }
    tp_script_urls.insert(inc.url);
    if (script::is_ad_or_tracking(inc.category)) {
      tp_ad_tracking_urls.insert(inc.url);
    }
    if (inc.inclusion == script::Inclusion::kDirect) {
      ++totals.direct_inclusions;
    } else {
      ++totals.indirect_inclusions;
      if (script::is_ad_or_tracking(inc.category)) {
        ++totals.indirect_ad_tracking;
      }
    }
  }
  if (!tp_script_urls.empty()) ++totals.sites_with_third_party;
  totals.third_party_script_count +=
      static_cast<long long>(tp_script_urls.size());
  totals.third_party_ad_tracking_count +=
      static_cast<long long>(tp_ad_tracking_urls.size());

  if (!log.complete()) return out;
  ++totals.sites_complete;

  // ---- §5.2 API usage -----------------------------------------------------
  bool uses_document_cookie = false;
  bool uses_cookie_store = false;
  for (const auto& read : log.reads) {
    if (read.api == CookieSource::kDocumentCookie) uses_document_cookie = true;
    if (read.api == CookieSource::kCookieStore) uses_cookie_store = true;
  }
  for (const auto& set : log.script_sets) {
    if (set.api == CookieSource::kDocumentCookie) uses_document_cookie = true;
    if (set.api == CookieSource::kCookieStore) uses_cookie_store = true;
  }
  if (uses_document_cookie) ++totals.sites_using_document_cookie;
  if (uses_cookie_store) ++totals.sites_using_cookie_store;

  // ---- ownership timeline (§4.3 steps 1-2) ------------------------------
  // Merge script and HTTP set events by time. The FIRST setter of a name
  // owns the pair; later actions by other script domains are cross-domain.
  std::vector<TimelineEvent> events;
  events.reserve(log.script_sets.size() + log.http_sets.size());
  for (const auto& s : log.script_sets) {
    events.push_back({s.time, false, &s, nullptr});
  }
  for (const auto& h : log.http_sets) {
    if (!h.first_party) continue;  // third-party response cookies: out of scope
    events.push_back({h.time, true, nullptr, &h});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.time < b.time;
                   });

  // name -> (owner domain, creating api). Inline/unknown setters are folded
  // into the first party, as the paper does for inline scripts.
  std::map<std::string, std::pair<std::string, CookieSource>> owner;
  // Candidate identifiers: encoded form -> owning pair (for exfiltration).
  // Ordered map (cglint D3): lookups dominate, but nothing downstream may
  // ever depend on hash-table iteration order.
  std::map<std::string, CookiePair> candidates;
  std::set<CookiePair> pairs_this_visit;

  // A candidate segment seen in the values of two *different* pairs (e.g. a
  // shared timestamp) identifies neither — mark it ambiguous and never match
  // it. The sentinel has an empty name.
  static const CookiePair kAmbiguous{};
  auto add_candidate = [&](std::string encoded, const CookiePair& pair) {
    auto [it, inserted] = candidates.try_emplace(std::move(encoded), pair);
    if (!inserted && it->second != pair) it->second = kAmbiguous;
  };
  auto add_candidates = [&](const CookiePair& pair, const std::string& value) {
    for (const auto& segment : script::extract_identifier_segments(value)) {
      add_candidate(segment, pair);
      if (options.match_encoded_identifiers) {
        add_candidate(crypto::base64_encode(segment), pair);
        add_candidate(crypto::Md5::hex(segment), pair);
        add_candidate(crypto::Sha1::hex(segment), pair);
      }
    }
  };

  auto record_pair = [&](const CookiePair& pair, CookieSource via) {
    auto [it, inserted] = out.pairs.try_emplace(pair);
    if (inserted) it->second.created_via = via;
    if (pairs_this_visit.insert(pair).second) ++it->second.sites_set;
  };

  std::set<std::string> cross_over_apis;  // "doc" / "store" flags per site
  std::set<std::string> cross_del_apis;

  for (const auto& event : events) {
    if (event.from_http) {
      const auto& h = *event.http;
      if (h.http_only) continue;  // invisible to scripts, out of scope
      const auto it = owner.find(h.cookie_name);
      if (it == owner.end()) {
        if (h.change_type == Type::kCreated ||
            h.change_type == Type::kOverwritten) {
          owner[h.cookie_name] = {h.setter_domain, CookieSource::kHttpHeader};
          const CookiePair pair{h.cookie_name, h.setter_domain};
          record_pair(pair, CookieSource::kHttpHeader);
          add_candidates(pair, h.value);
        }
      } else if (h.change_type == Type::kOverwritten ||
                 h.change_type == Type::kCreated) {
        // Header re-sets re-attribute ownership to the response site but are
        // NOT counted as cross-domain manipulations (§9: header actions are
        // out of scope).
        add_candidates({h.cookie_name, it->second.first}, h.value);
      }
      continue;
    }

    const auto& s = *event.script;
    ++totals.script_set_events;
    if (!s.setter_url.empty()) out.setter_script_urls.insert(s.setter_url);

    // Attribution accuracy bookkeeping (ground truth vs stack-derived).
    ++totals.attributed_sets;
    if (s.setter_domain.empty()) {
      ++totals.attribution_unknown;
    } else if (s.setter_domain == s.true_domain) {
      ++totals.attribution_correct;
    }

    // Fold inline/unknown setters into the first party.
    const std::string actor =
        s.setter_domain.empty() ? log.site : s.setter_domain;
    const bool actor_is_tp = actor != log.site;

    const auto it = owner.find(s.cookie_name);
    if (it == owner.end()) {
      if (s.change_type == Type::kCreated ||
          s.change_type == Type::kOverwritten) {
        owner[s.cookie_name] = {actor, s.api};
        const CookiePair pair{s.cookie_name, actor};
        record_pair(pair, s.api);
        add_candidates(pair, s.value);
        if (actor_is_tp) {
          ++totals.tp_cookies_set;
        } else {
          ++totals.fp_cookies_set;
        }
      }
      continue;
    }

    const std::string& owning_domain = it->second.first;
    const CookiePair pair{s.cookie_name, owning_domain};
    const std::string api_tag =
        s.api == CookieSource::kCookieStore ? "store" : "doc";

    if (actor == owning_domain) {
      // Same-domain refresh: extend candidates with the new value.
      if (s.change_type != Type::kDeleted) add_candidates(pair, s.value);
      if (s.change_type == Type::kDeleted) owner.erase(it);
      continue;
    }

    // Cross-domain action (§4.3 step 3).
    if (s.change_type == Type::kOverwritten) {
      auto& stats = out.pairs[pair];
      ++stats.overwriter_entities[entities.entity_for(actor)];
      out.domains[actor].overwritten_pairs.insert(pair);
      cross_over_apis.insert(api_tag);
      ++totals.cross_overwrites;
      totals.overwrite_value_changed += s.value_changed ? 1 : 0;
      totals.overwrite_expires_changed += s.expires_changed ? 1 : 0;
      totals.overwrite_domain_changed += s.domain_changed ? 1 : 0;
      totals.overwrite_path_changed += s.path_changed ? 1 : 0;
      if (s.expires_changed && s.prev_expires > 0 && s.new_expires > 0) {
        if (s.new_expires > s.prev_expires) {
          ++totals.overwrite_expiry_extended;
          totals.expiry_days_added +=
              static_cast<double>(s.new_expires - s.prev_expires) / 86400000.0;
        } else {
          ++totals.overwrite_expiry_shortened;
        }
      }
      // Ownership stays with the original creator; new value becomes a
      // candidate for the overwriter's later requests too.
      add_candidates(pair, s.value);
    } else if (s.change_type == Type::kDeleted) {
      auto& stats = out.pairs[pair];
      ++stats.deleter_entities[entities.entity_for(actor)];
      out.domains[actor].deleted_pairs.insert(pair);
      cross_del_apis.insert(api_tag);
      owner.erase(it);
    } else if (s.change_type == Type::kCreated) {
      // Re-creation after expiry/deletion: a fresh pair owned by the actor.
      owner[s.cookie_name] = {actor, s.api};
      const CookiePair fresh{s.cookie_name, actor};
      record_pair(fresh, s.api);
      add_candidates(fresh, s.value);
    }
  }

  if (cross_over_apis.count("doc") != 0) ++totals.sites_doc_overwrite;
  if (cross_over_apis.count("store") != 0) ++totals.sites_store_overwrite;
  if (cross_del_apis.count("doc") != 0) ++totals.sites_doc_delete;
  if (cross_del_apis.count("store") != 0) ++totals.sites_store_delete;

  // ---- cookieStore usage details ----------------------------------------
  for (const auto& s : log.script_sets) {
    if (s.api != CookieSource::kCookieStore) continue;
    totals.store_cookie_names.insert(s.cookie_name);
    ++totals.store_setting_scripts;
    if (!s.setter_domain.empty()) {
      totals.store_script_domains.insert(s.setter_domain);
    }
  }

  // ---- exfiltration detection (§4.3) -------------------------------------
  bool site_doc_exfil = false;
  bool site_store_exfil = false;
  for (const auto& request : log.requests) {
    const std::string initiator = request.initiator_domain.empty()
                                      ? log.site
                                      : request.initiator_domain;
    const auto query_pos = request.url.find('?');
    if (query_pos == std::string::npos) continue;
    const auto params = net::parse_query(request.url.substr(query_pos + 1));
    for (const auto& param : params) {
      for (const auto& segment :
           script::extract_identifier_segments(param.value)) {
        const auto hit = candidates.find(segment);
        if (hit == candidates.end()) continue;
        const CookiePair& pair = hit->second;
        if (pair.name.empty()) continue;  // ambiguous segment
        if (pair.owner_domain == initiator) continue;  // authorized
        auto& stats = out.pairs[pair];
        ++stats.exfiltrator_entities[entities.entity_for(initiator)];
        ++stats.destination_entities[entities.entity_for(
            request.dest_domain)];
        out.domains[initiator].exfiltrated_pairs.insert(pair);
        if (stats.created_via == CookieSource::kCookieStore) {
          site_store_exfil = true;
        } else {
          site_doc_exfil = true;
        }
      }
    }
  }
  if (site_doc_exfil) ++totals.sites_doc_exfil;
  if (site_store_exfil) ++totals.sites_store_exfil;

  // ---- §8 DOM pilot --------------------------------------------------------
  for (const auto& mod : log.dom_mods) {
    if (mod.modifier_domain != log.site) {
      ++totals.sites_with_cross_dom_modification;
      break;
    }
  }

  totals.unique_setter_scripts =
      static_cast<long long>(out.setter_script_urls.size());
  if (options.totals_only) {
    out.pairs.clear();
    out.domains.clear();
    out.setter_script_urls.clear();
    totals.unique_setter_scripts = 0;
  }
  return out;
}

int SiteSummary::pair_count(CookieSource via) const {
  int n = 0;
  for (const auto& [pair, stats] : pairs) {
    const bool is_store = stats.created_via == CookieSource::kCookieStore;
    if ((via == CookieSource::kCookieStore) == is_store) ++n;
  }
  return n;
}

int SiteSummary::exfiltrated_pair_count(CookieSource via) const {
  int n = 0;
  for (const auto& [pair, stats] : pairs) {
    const bool is_store = stats.created_via == CookieSource::kCookieStore;
    if ((via == CookieSource::kCookieStore) == is_store && stats.exfiltrated()) {
      ++n;
    }
  }
  return n;
}

int SiteSummary::overwritten_pair_count(CookieSource via) const {
  int n = 0;
  for (const auto& [pair, stats] : pairs) {
    const bool is_store = stats.created_via == CookieSource::kCookieStore;
    if ((via == CookieSource::kCookieStore) == is_store && stats.overwritten()) {
      ++n;
    }
  }
  return n;
}

int SiteSummary::deleted_pair_count(CookieSource via) const {
  int n = 0;
  for (const auto& [pair, stats] : pairs) {
    const bool is_store = stats.created_via == CookieSource::kCookieStore;
    if ((via == CookieSource::kCookieStore) == is_store && stats.deleted()) {
      ++n;
    }
  }
  return n;
}

namespace {

std::vector<SiteSummary::RankedPair> rank_pairs(
    const std::map<CookiePair, PairStats>& pairs, std::size_t n,
    const std::function<int(const PairStats&)>& key) {
  std::vector<SiteSummary::RankedPair> out;
  for (const auto& [pair, stats] : pairs) {
    if (key(stats) > 0) out.push_back({pair, &stats});
  }
  std::sort(out.begin(), out.end(),
            [&](const SiteSummary::RankedPair& a,
                const SiteSummary::RankedPair& b) {
              const int ka = key(*a.stats);
              const int kb = key(*b.stats);
              if (ka != kb) return ka > kb;
              return a.pair < b.pair;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<std::pair<std::string, int>> rank_domains(
    const std::map<std::string, DomainStats>& domains, std::size_t n,
    const std::function<int(const DomainStats&)>& key) {
  std::vector<std::pair<std::string, int>> out;
  for (const auto& [domain, stats] : domains) {
    const int k = key(stats);
    if (k > 0) out.emplace_back(domain, k);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace

std::vector<SiteSummary::RankedPair> SiteSummary::top_exfiltrated(
    std::size_t n) const {
  return rank_pairs(pairs, n, [](const PairStats& s) {
    return static_cast<int>(s.destination_entities.size());
  });
}

std::vector<SiteSummary::RankedPair> SiteSummary::top_overwritten(
    std::size_t n) const {
  return rank_pairs(pairs, n, [](const PairStats& s) {
    return static_cast<int>(s.overwriter_entities.size());
  });
}

std::vector<SiteSummary::RankedPair> SiteSummary::top_deleted(
    std::size_t n) const {
  return rank_pairs(pairs, n, [](const PairStats& s) {
    return static_cast<int>(s.deleter_entities.size());
  });
}

std::vector<std::pair<std::string, int>> SiteSummary::top_exfiltrator_domains(
    std::size_t n) const {
  return rank_domains(domains, n, [](const DomainStats& s) {
    return static_cast<int>(s.exfiltrated_pairs.size());
  });
}

std::vector<std::pair<std::string, int>> SiteSummary::top_overwriter_domains(
    std::size_t n) const {
  return rank_domains(domains, n, [](const DomainStats& s) {
    return static_cast<int>(s.overwritten_pairs.size());
  });
}

std::vector<std::pair<std::string, int>> SiteSummary::top_deleter_domains(
    std::size_t n) const {
  return rank_domains(domains, n, [](const DomainStats& s) {
    return static_cast<int>(s.deleted_pairs.size());
  });
}

}  // namespace cg::analysis
