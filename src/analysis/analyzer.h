// Analysis framework (paper §4.3): cross-domain access detection, encoded
// identifier matching, exfiltration confirmation, manipulation
// classification, and dataset-level aggregation.
//
// The analyzer is a thin stateful wrapper over the fold/merge algebra in
// analysis/fold.h: ingest() folds one visit into a SiteSummary and merges
// it into the running state, so the full 20k-site crawl fits in memory and
// the exact same code path serves batch analysis (analyze_archive) and the
// online query tier (src/serve/).
#pragma once

#include "analysis/fold.h"

namespace cg::analysis {

class Analyzer {
 public:
  explicit Analyzer(const entities::EntityMap& entities,
                    AnalyzerOptions options = {})
      : entities_(entities), options_(options) {}

  /// Processes one visit's logs into the aggregates: fold_visit + merge.
  /// Incomplete visits only contribute crawl counters and timings (the
  /// paper drops them too).
  void ingest(const instrument::VisitLog& log) {
    state_.merge(fold_visit(entities_, options_, log));
  }

  /// Folds `other` into this analyzer. Precondition: `other` ingested a
  /// *later*, disjoint site-index shard of the same corpus, with the same
  /// entity map and options (see SiteSummary::merge).
  void merge(Analyzer&& other) { state_.merge(std::move(other.state_)); }

  /// Adopts a precomputed summary (the serving tier's load path): the
  /// summary must cover a later, disjoint site-rank range, same contract
  /// as merge().
  void apply(SiteSummary&& summary) { state_.merge(std::move(summary)); }

  /// The complete aggregate state — everything below is a view into it.
  const SiteSummary& summary() const { return state_; }

  const Totals& totals() const { return state_.totals; }
  const std::map<CookiePair, PairStats>& pairs() const {
    return state_.pairs;
  }
  const std::map<std::string, DomainStats>& domains() const {
    return state_.domains;
  }

  /// Unique pair counts by creating API.
  int pair_count(cookies::CookieSource via) const {
    return state_.pair_count(via);
  }
  int exfiltrated_pair_count(cookies::CookieSource via) const {
    return state_.exfiltrated_pair_count(via);
  }
  int overwritten_pair_count(cookies::CookieSource via) const {
    return state_.overwritten_pair_count(via);
  }
  int deleted_pair_count(cookies::CookieSource via) const {
    return state_.deleted_pair_count(via);
  }

  /// Rows for Table 2 (top exfiltrated) / Table 5 (top manipulated),
  /// sorted by destination-entity (resp. manipulator-entity) count.
  using RankedPair = SiteSummary::RankedPair;
  std::vector<RankedPair> top_exfiltrated(std::size_t n) const {
    return state_.top_exfiltrated(n);
  }
  std::vector<RankedPair> top_overwritten(std::size_t n) const {
    return state_.top_overwritten(n);
  }
  std::vector<RankedPair> top_deleted(std::size_t n) const {
    return state_.top_deleted(n);
  }

  /// Rows for Figures 2 / 6: (domain, unique-cookie count).
  std::vector<std::pair<std::string, int>> top_exfiltrator_domains(
      std::size_t n) const {
    return state_.top_exfiltrator_domains(n);
  }
  std::vector<std::pair<std::string, int>> top_overwriter_domains(
      std::size_t n) const {
    return state_.top_overwriter_domains(n);
  }
  std::vector<std::pair<std::string, int>> top_deleter_domains(
      std::size_t n) const {
    return state_.top_deleter_domains(n);
  }

 private:
  const entities::EntityMap& entities_;
  AnalyzerOptions options_;
  SiteSummary state_;
};

}  // namespace cg::analysis
