// Analysis framework (paper §4.3): cross-domain access detection, encoded
// identifier matching, exfiltration confirmation, manipulation
// classification, and dataset-level aggregation.
//
// The analyzer is streaming: the crawler feeds it one VisitLog at a time and
// it keeps only aggregates, so the full 20k-site crawl fits in memory.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cookies/cookie.h"
#include "entities/entity_map.h"
#include "instrument/records.h"

namespace cg::analysis {

/// Identity of a cookie in the paper's sense: (name, domain of the script
/// that set it) — footnote 2.
struct CookiePair {
  std::string name;
  std::string owner_domain;
  auto operator<=>(const CookiePair&) const = default;
};

/// Per-pair aggregates. Entity maps count the number of *sites* on which
/// that entity performed the action (used for top-3 rankings).
struct PairStats {
  cookies::CookieSource created_via = cookies::CookieSource::kDocumentCookie;
  int sites_set = 0;
  std::map<std::string, int> exfiltrator_entities;
  std::map<std::string, int> destination_entities;
  std::map<std::string, int> overwriter_entities;
  std::map<std::string, int> deleter_entities;
  bool exfiltrated() const { return !exfiltrator_entities.empty(); }
  bool overwritten() const { return !overwriter_entities.empty(); }
  bool deleted() const { return !deleter_entities.empty(); }
};

/// Per-script-domain aggregates (Figures 2 and 6).
struct DomainStats {
  std::set<CookiePair> exfiltrated_pairs;
  std::set<CookiePair> overwritten_pairs;
  std::set<CookiePair> deleted_pairs;
};

/// Everything the benches print.
struct Totals {
  int sites_crawled = 0;
  int sites_complete = 0;

  // ---- §5.1 prevalence -----------------------------------------------
  int sites_with_third_party = 0;
  long long third_party_script_count = 0;  // distinct per site, summed
  long long third_party_ad_tracking_count = 0;
  long long tp_cookies_set = 0;  // per-site cookie set counts
  long long fp_cookies_set = 0;
  long long direct_inclusions = 0;
  long long indirect_inclusions = 0;
  long long indirect_ad_tracking = 0;

  // ---- §5.2 API usage ---------------------------------------------------
  int sites_using_document_cookie = 0;
  int sites_using_cookie_store = 0;
  std::set<std::string> store_cookie_names;
  long long store_setting_scripts = 0;
  std::set<std::string> store_script_domains;

  // ---- Table 1 site counters ---------------------------------------------
  int sites_doc_exfil = 0;
  int sites_doc_overwrite = 0;
  int sites_doc_delete = 0;
  int sites_store_exfil = 0;
  int sites_store_overwrite = 0;
  int sites_store_delete = 0;

  // ---- §5.5 overwrite attribute diffs ------------------------------------
  long long cross_overwrites = 0;
  long long overwrite_value_changed = 0;
  long long overwrite_expires_changed = 0;
  long long overwrite_domain_changed = 0;
  long long overwrite_path_changed = 0;

  // ---- §5.5 tracking-lifespan extension ----------------------------------
  // "overwriting is primarily used to manipulate the content and lifespan of
  // cookies ... to extend tracking durations beyond the original intent".
  long long overwrite_expiry_extended = 0;   // new expiry later than old
  long long overwrite_expiry_shortened = 0;  // new expiry earlier
  /// Total days of lifetime added by cross-domain expiry extensions.
  double expiry_days_added = 0;

  // ---- §8 DOM pilot -------------------------------------------------------
  int sites_with_cross_dom_modification = 0;

  // ---- attribution accuracy (simulator-only ground truth) ---------------
  long long attributed_sets = 0;
  long long attribution_correct = 0;
  long long attribution_unknown = 0;

  // ---- Table 4 timings ----------------------------------------------------
  std::vector<TimeMillis> dom_content_loaded;
  std::vector<TimeMillis> dom_interactive;
  std::vector<TimeMillis> load_event;

  long long script_set_events = 0;
  long long unique_setter_scripts = 0;

  /// Folds a later shard's totals into this one: counters add, name/domain
  /// sets union, timing vectors concatenate in shard order. Exception:
  /// `unique_setter_scripts` is summed here (script URLs can repeat across
  /// shards, so the sum is an upper bound) — Analyzer::merge recomputes it
  /// exactly from the merged URL set.
  void merge(Totals&& other);
};

struct AnalyzerOptions {
  /// Match Base64/MD5/SHA1-encoded identifier forms in addition to raw
  /// (paper §4.3). Disable for the D5 ablation: raw-only detection misses
  /// every encoded exfiltration flow.
  bool match_encoded_identifiers = true;
};

class Analyzer {
 public:
  explicit Analyzer(const entities::EntityMap& entities,
                    AnalyzerOptions options = {})
      : entities_(entities), options_(options) {}

  /// Processes one visit's logs into the aggregates. Incomplete visits only
  /// contribute crawl counters and timings (the paper drops them too).
  void ingest(const instrument::VisitLog& log);

  /// Folds `other` into this analyzer. Precondition: `other` ingested a
  /// *later*, disjoint site-index shard of the same corpus, with the same
  /// entity map and options. Cookie ownership is resolved per visit, so
  /// shard-merged aggregates equal a sequential ingest of the same visits
  /// in site order: counters add, pair/domain maps union (with counts
  /// added), and creation metadata keeps the earlier shard's value — the
  /// same first-setter-wins rule the sequential path applies.
  void merge(Analyzer&& other);

  const Totals& totals() const { return totals_; }
  const std::map<CookiePair, PairStats>& pairs() const { return pairs_; }
  const std::map<std::string, DomainStats>& domains() const {
    return domains_;
  }

  /// Unique pair counts by creating API.
  int pair_count(cookies::CookieSource via) const;
  int exfiltrated_pair_count(cookies::CookieSource via) const;
  int overwritten_pair_count(cookies::CookieSource via) const;
  int deleted_pair_count(cookies::CookieSource via) const;

  /// Rows for Table 2 (top exfiltrated) / Table 5 (top manipulated),
  /// sorted by destination-entity (resp. manipulator-entity) count.
  struct RankedPair {
    CookiePair pair;
    const PairStats* stats;
  };
  std::vector<RankedPair> top_exfiltrated(std::size_t n) const;
  std::vector<RankedPair> top_overwritten(std::size_t n) const;
  std::vector<RankedPair> top_deleted(std::size_t n) const;

  /// Rows for Figures 2 / 6: (domain, unique-cookie count).
  std::vector<std::pair<std::string, int>> top_exfiltrator_domains(
      std::size_t n) const;
  std::vector<std::pair<std::string, int>> top_overwriter_domains(
      std::size_t n) const;
  std::vector<std::pair<std::string, int>> top_deleter_domains(
      std::size_t n) const;

 private:
  const entities::EntityMap& entities_;
  AnalyzerOptions options_;
  Totals totals_;
  std::map<CookiePair, PairStats> pairs_;
  std::map<std::string, DomainStats> domains_;
  std::set<std::string> setter_script_urls_;
};

/// Returns the top-`n` keys of a frequency map, highest count first.
std::vector<std::pair<std::string, int>> top_counts(
    const std::map<std::string, int>& counts, std::size_t n);

}  // namespace cg::analysis
