#include "browser/browser.h"

#include "browser/page.h"

namespace cg::browser {

Browser::Browser(BrowserConfig config, std::uint64_t seed)
    : config_(config), clock_(config.clock_start), rng_(seed) {}

Browser::~Browser() = default;

void Browser::add_extension(Extension* extension) {
  extensions_.push_back(extension);
}

TimeMillis Browser::extension_api_overhead_ms() const {
  TimeMillis total = 0;
  for (const auto* extension : extensions_) {
    total += extension->api_call_overhead_ms();
  }
  return total;
}

std::unique_ptr<Page> Browser::navigate(const net::Url& url) {
  if (!visit_started_) {
    visit_started_ = true;
    for (auto* extension : extensions_) {
      extension->on_visit_start(*this);
    }
  }
  auto page = std::make_unique<Page>(*this, url);
  for (auto* extension : extensions_) {
    extension->on_page_start(*page);
  }
  page->load();
  return page;
}

}  // namespace cg::browser
