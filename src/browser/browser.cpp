#include "browser/browser.h"

#include "browser/page.h"
#include "obs/trace.h"

namespace cg::browser {

NavigationResult::NavigationResult() = default;
NavigationResult::NavigationResult(std::unique_ptr<Page> page_in,
                                   fault::FailureClass failure_in)
    : page(std::move(page_in)), failure(failure_in) {}
NavigationResult::NavigationResult(NavigationResult&&) noexcept = default;
NavigationResult& NavigationResult::operator=(NavigationResult&&) noexcept =
    default;
NavigationResult::~NavigationResult() = default;
NavigationResult::operator std::unique_ptr<Page>() && {
  return std::move(page);
}

Browser::Browser(BrowserConfig config, std::uint64_t seed)
    : config_(config), clock_(config.clock_start), rng_(seed) {
  // Transport latency (stalls, connect timeouts) is charged to this clock.
  network_.bind_clock(&clock_);
}

Browser::~Browser() = default;

void Browser::add_extension(Extension* extension) {
  extensions_.push_back(extension);
}

TimeMillis Browser::extension_api_overhead_ms() const {
  TimeMillis total = 0;
  for (const auto* extension : extensions_) {
    total += extension->api_call_overhead_ms();
  }
  return total;
}

NavigationResult Browser::navigate(const net::Url& url) {
  const TimeMillis nav_start = clock_.now();
  obs::metric_add("browser.navigations");
  // Name resolution precedes everything; a dead name means no visit at all.
  if (!dns_.resolve(url.host()).ok()) {
    obs::metric_add("browser.navigations_failed");
    obs::span(obs::Detail::kFull, "browser", "navigate", nav_start, 0);
    return {nullptr, fault::FailureClass::kDnsFailure};
  }
  if (!visit_started_) {
    visit_started_ = true;
    for (auto* extension : extensions_) {
      extension->on_visit_start(*this);
    }
  }
  auto page = std::make_unique<Page>(*this, url);
  for (auto* extension : extensions_) {
    extension->on_page_start(*page);
  }
  if (!page->load()) {
    obs::metric_add("browser.navigations_failed");
    obs::span(obs::Detail::kFull, "browser", "navigate", nav_start,
              clock_.now() - nav_start);
    return {nullptr, page->load_failure()};
  }
  obs::span(obs::Detail::kFull, "browser", "navigate", nav_start,
            clock_.now() - nav_start);
  return {std::move(page), fault::FailureClass::kNone};
}

}  // namespace cg::browser
