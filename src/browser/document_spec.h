// Structured stand-in for a page's HTML: which scripts the markup includes
// statically, which links exist (for crawler clicks), and how heavy the
// static DOM is.
#pragma once

#include <string>
#include <vector>

namespace cg::browser {

struct DocumentSpec {
  /// Catalog ids of statically included scripts, in document order.
  std::vector<std::string> script_ids;
  /// Same-site link targets available for the crawler's random clicks
  /// (paths resolved against the page URL).
  std::vector<std::string> link_paths;
  /// Number of static DOM nodes (drives parse cost in the timing model).
  int static_dom_nodes = 120;
};

}  // namespace cg::browser
