#include "browser/network.h"

#include "net/psl.h"

namespace cg::browser {

void NetworkLayer::register_host(std::string_view host,
                                 ServerHandler handler) {
  hosts_.insert_or_assign(std::string(host), std::move(handler));
}

void NetworkLayer::register_site(std::string_view site,
                                 ServerHandler handler) {
  sites_.insert_or_assign(std::string(site), std::move(handler));
}

net::HttpResponse NetworkLayer::dispatch(
    const net::HttpRequest& request) const {
  if (const auto it = hosts_.find(request.url.host()); it != hosts_.end()) {
    return it->second(request);
  }
  const std::string site = net::etld_plus_one(request.url.host());
  if (const auto it = sites_.find(site); it != sites_.end()) {
    return it->second(request);
  }
  net::HttpResponse response;
  response.status = 200;
  return response;
}

}  // namespace cg::browser
