#include "browser/network.h"

#include "net/psl.h"

namespace cg::browser {

void NetworkLayer::register_host(std::string_view host,
                                 ServerHandler handler) {
  hosts_.insert_or_assign(std::string(host), std::move(handler));
}

void NetworkLayer::register_site(std::string_view site,
                                 ServerHandler handler) {
  sites_.insert_or_assign(std::string(site), std::move(handler));
}

net::HttpResponse NetworkLayer::dispatch(
    const net::HttpRequest& request) const {
  if (fault_hook_) {
    const net::TransportVerdict verdict = fault_hook_(request);
    if (clock_ != nullptr && verdict.latency_ms > 0) {
      clock_->advance(verdict.latency_ms);
    }
    if (verdict.error != net::NetError::kOk) {
      net::HttpResponse failed;
      failed.status = 0;
      failed.net_error = verdict.error;
      return failed;
    }
  }

  net::HttpResponse response;
  if (const auto it = hosts_.find(request.url.host()); it != hosts_.end()) {
    response = it->second(request);
  } else {
    const std::string site = net::etld_plus_one(request.url.host());
    if (const auto site_it = sites_.find(site); site_it != sites_.end()) {
      response = site_it->second(request);
    } else {
      response.status = 200;
    }
  }
  if (response_hook_) response_hook_(request, response);
  return response;
}

}  // namespace cg::browser
