// A loaded page: main frame, event loop, script host, and the cookie /
// network API surface scripts call into.
//
// Page implements script::PageServices; every call funnels through the
// installed extensions' filter/veto/observe hooks, so the measurement
// extension and CookieGuard interpose exactly where a real content script
// wrapping document.cookie would.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "browser/browser.h"
#include "browser/document_spec.h"
#include "net/http.h"
#include "net/url.h"
#include "script/exec_context.h"
#include "script/page_services.h"
#include "webplat/event_loop.h"
#include "webplat/frame.h"
#include "webplat/stack_trace.h"

namespace cg::browser {

class Page final : public script::PageServices {
 public:
  Page(Browser& browser, net::Url url);

  /// Fetches the document, parses the DOM, runs static scripts, drains the
  /// event loop, and records the lifecycle timings. Returns false when the
  /// document fetch failed in transport (load_failure() says why); the page
  /// is then unusable.
  bool load();

  /// Why load() returned false (kNone while the page is healthy).
  fault::FailureClass load_failure() const { return load_failure_; }

  const net::Url& url() const { return url_; }
  Browser& browser() { return browser_; }
  webplat::Frame& main_frame() { return main_frame_; }
  webplat::EventLoop& loop() { return loop_; }
  const webplat::PageTimings& timings() const { return timings_; }
  const DocumentSpec& spec() const { return spec_; }
  const webplat::StackTrace& current_stack() const { return stack_; }

  /// Simulated user scroll: advances time and lets scheduled work run.
  void simulate_scroll();

  /// Executes a catalog script on demand as a direct inclusion (used by
  /// breakage probes and tests).
  void run_catalog_script(std::string_view script_id);

  /// Runs `body` as if it were code of `ctx`'s script: pushes the proper
  /// stack frame so interception layers attribute correctly.
  void run_as(const script::ExecContext& ctx,
              const std::function<void(script::PageServices&)>& body);

  /// Creates a subframe at `url` in the main frame.
  webplat::Frame& create_subframe(const net::Url& url);

  /// Runs `body` inside `frame` under SOP rules (paper §3, Figure 1):
  /// same-origin frames share the first-party jar and document; cross-origin
  /// frames get a partitioned jar (keyed by frame origin) and their own
  /// document — they cannot reach the main frame's cookies or DOM. This is
  /// why the paper's adversary must be *in the main frame*.
  void run_in_frame(webplat::Frame& frame, const script::ExecContext& ctx,
                    const std::function<void(script::PageServices&)>& body);

  // ---- script::PageServices ------------------------------------------
  std::string document_cookie_read(const script::ExecContext& ctx) override;
  void document_cookie_write(const script::ExecContext& ctx,
                             std::string_view cookie_line) override;
  void cookie_store_get_all(
      const script::ExecContext& ctx,
      std::function<void(std::vector<script::StoreCookie>)> callback) override;
  void cookie_store_get(
      const script::ExecContext& ctx, std::string_view name,
      std::function<void(std::optional<script::StoreCookie>)> callback)
      override;
  void cookie_store_set(const script::ExecContext& ctx, std::string_view name,
                        std::string_view value) override;
  void cookie_store_delete(const script::ExecContext& ctx,
                           std::string_view name) override;
  void send_request(const script::ExecContext& ctx,
                    const net::Url& url) override;
  void inject_script(const script::ExecContext& includer,
                     std::string_view script_id) override;
  void set_timeout(const script::ExecContext& ctx, TimeMillis delay_ms,
                   std::function<void()> callback,
                   std::string_view helper_script_url) override;
  webplat::Document& main_document() override {
    return main_frame_.document();
  }
  TimeMillis now() const override;
  script::Rng& rng() override { return browser_.rng(); }

 private:
  /// RAII stack-frame push/pop for script execution.
  class FrameGuard;

  /// Builds the ExecContext for a catalog script on this page.
  script::ExecContext make_context(const script::ScriptSpec& spec,
                                   script::Inclusion inclusion,
                                   const script::ExecContext* includer) const;

  void include_script(std::string_view script_id, script::Inclusion inclusion,
                      const script::ExecContext* includer);

  /// Advances the clock by the API base cost plus extension overhead.
  void charge_api_call();

  /// Sends a request through the network layer with cookie attachment,
  /// request/headers notifications, and policy-gated Set-Cookie processing.
  net::HttpResponse fetch(net::HttpRequest request,
                          const script::ExecContext* initiator);

  /// Policy context for an access scoped to `subject` on this page: the
  /// top-level site, cross-site bit, and stack-attributed script origin.
  policy::CookieAccessContext cookie_ctx(const net::Url& subject,
                                         cookies::JarApi api) const;

  /// Retrieval through the active policy: consults every partition
  /// key_for_read names, applies the per-cookie visibility filter, and
  /// preserves the single-jar path byte-for-byte under NoDefense. `now` is
  /// passed explicitly so fetch() can pin the request-entry timestamp.
  std::vector<cookies::Cookie> policy_read(
      const policy::CookieAccessContext& ctx, TimeMillis now);

  /// Storage through the active policy; returns the jar's CookieChange, or
  /// nullopt when the policy refused the store (defense-caused refusals are
  /// tallied in Browser::policy_stats and `policy.*` metrics; callers fire
  /// on_write_blocked like an extension veto).
  std::optional<cookies::CookieChange> policy_store(
      const net::Url& source_url, const net::ParsedSetCookie& parsed,
      policy::CookieAccessContext ctx, TimeMillis now,
      std::optional<cookies::CookieSource> source = std::nullopt);

  class FrameServices;

  Browser& browser_;
  net::Url url_;
  /// eTLD+1 of the page URL — Firefox's firstPartyDomain, CHIPS's
  /// partition key.
  std::string top_level_site_;
  webplat::Frame main_frame_;
  webplat::EventLoop loop_;
  webplat::StackTrace stack_;
  DocumentSpec spec_;
  webplat::PageTimings timings_;
  fault::FailureClass load_failure_ = fault::FailureClass::kNone;
  TimeMillis nav_start_ = 0;
  int inclusion_depth_ = 0;  // guards against inject cycles
  /// Partitioned cookie jars for cross-origin subframes, keyed by the
  /// subframe origin (Safari-ITP/Total-Cookie-Protection style, §2.1).
  std::map<std::string, cookies::CookieJar> partitioned_jars_;
};

}  // namespace cg::browser
