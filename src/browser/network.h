// In-process network layer: hostname → server handler routing.
//
// The corpus registers handlers for every first- and third-party host it
// generates; unknown hosts get a default 200. Handlers are ordinary
// functions, so servers can be stateful (SSO session endpoints, RTB
// exchanges) without any socket machinery.
//
// The layer also models the transport itself: an optional fault hook rules
// on every request before routing (connect timeouts, resets, stalls — the
// crawl fault layer plugs in here), and an optional response hook mutates
// responses in flight (truncated Set-Cookie headers). Transport latency is
// burned on the bound simulated clock.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "net/clock.h"
#include "net/http.h"

namespace cg::browser {

class NetworkLayer {
 public:
  using ServerHandler =
      std::function<net::HttpResponse(const net::HttpRequest&)>;
  /// Pre-dispatch transport ruling: a non-kOk error short-circuits routing;
  /// latency is charged to the bound clock either way.
  using FaultHook = std::function<net::TransportVerdict(const net::HttpRequest&)>;
  /// Post-dispatch in-flight mutation of successful responses.
  using ResponseHook =
      std::function<void(const net::HttpRequest&, net::HttpResponse&)>;

  /// Registers a handler for an exact hostname (later registration wins).
  void register_host(std::string_view host, ServerHandler handler);

  /// Registers a fallback for any subdomain of `site` (eTLD+1 routing).
  void register_site(std::string_view site, ServerHandler handler);

  /// Routes a request: fault hook, then exact host match, then site match,
  /// then default 200; successful responses pass the response hook.
  net::HttpResponse dispatch(const net::HttpRequest& request) const;

  /// Clock charged with transport latency the fault hook reports. Owned by
  /// the Browser; may be null (latency is then dropped).
  void bind_clock(SimClock* clock) { clock_ = clock; }

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  void set_response_hook(ResponseHook hook) {
    response_hook_ = std::move(hook);
  }

  std::size_t host_count() const { return hosts_.size(); }

 private:
  std::map<std::string, ServerHandler, std::less<>> hosts_;
  std::map<std::string, ServerHandler, std::less<>> sites_;
  SimClock* clock_ = nullptr;
  FaultHook fault_hook_;
  ResponseHook response_hook_;
};

}  // namespace cg::browser
