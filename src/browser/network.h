// In-process network layer: hostname → server handler routing.
//
// The corpus registers handlers for every first- and third-party host it
// generates; unknown hosts get a default 200. Handlers are ordinary
// functions, so servers can be stateful (SSO session endpoints, RTB
// exchanges) without any socket machinery.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "net/http.h"

namespace cg::browser {

class NetworkLayer {
 public:
  using ServerHandler =
      std::function<net::HttpResponse(const net::HttpRequest&)>;

  /// Registers a handler for an exact hostname (later registration wins).
  void register_host(std::string_view host, ServerHandler handler);

  /// Registers a fallback for any subdomain of `site` (eTLD+1 routing).
  void register_site(std::string_view site, ServerHandler handler);

  /// Routes a request: exact host match, then site match, then default 200.
  net::HttpResponse dispatch(const net::HttpRequest& request) const;

  std::size_t host_count() const { return hosts_.size(); }

 private:
  std::map<std::string, ServerHandler, std::less<>> hosts_;
  std::map<std::string, ServerHandler, std::less<>> sites_;
};

}  // namespace cg::browser
