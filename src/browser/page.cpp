#include "browser/page.h"

#include <utility>

#include "net/psl.h"
#include "obs/trace.h"
#include "script/interpreter.h"

namespace cg::browser {
namespace {

// Expands "{site}" in first-party script URL templates.
std::string expand_site(std::string_view url_template, std::string_view host) {
  std::string out(url_template);
  const auto pos = out.find("{site}");
  if (pos != std::string::npos) out.replace(pos, 6, host);
  return out;
}

constexpr int kMaxInclusionDepth = 8;

// Right-skewed latency: base + jitter * u1*u2*u3 (mean base + jitter/8,
// median ~ base + 0.069*jitter) — the long-tailed shape of real page loads.
TimeMillis skewed_latency(TimeMillis base, TimeMillis jitter,
                          cg::script::Rng& rng) {
  const double u = rng.uniform() * rng.uniform() * rng.uniform();
  return base + static_cast<TimeMillis>(static_cast<double>(jitter) * u);
}

}  // namespace

class Page::FrameGuard {
 public:
  FrameGuard(webplat::StackTrace& stack, std::string script_url,
             std::string function_name)
      : stack_(stack) {
    stack_.push({std::move(script_url), std::move(function_name), false});
  }
  ~FrameGuard() { stack_.pop(); }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

 private:
  webplat::StackTrace& stack_;
};

Page::Page(Browser& browser, net::Url url)
    : browser_(browser),
      url_(url),
      top_level_site_(net::etld_plus_one(url_.host())),
      main_frame_(std::move(url), nullptr),
      loop_(&browser.clock()) {}

TimeMillis Page::now() const { return browser_.clock().now(); }

void Page::charge_api_call() {
  browser_.clock().advance(browser_.config().api_base_cost_ms +
                           browser_.extension_api_overhead_ms());
}

bool Page::load() {
  auto& clock = browser_.clock();
  auto& rng = browser_.rng();
  const auto& config = browser_.config();
  nav_start_ = clock.now();

  // Document fetch.
  clock.advance(
      skewed_latency(config.doc_fetch_base_ms, config.doc_fetch_jitter_ms,
                     rng));
  net::HttpRequest doc_request;
  doc_request.method = net::HttpMethod::kGet;
  doc_request.url = url_;
  doc_request.destination = net::RequestDestination::kDocument;
  const net::HttpResponse doc_response = fetch(std::move(doc_request), nullptr);
  if (!doc_response.transport_ok()) {
    load_failure_ = doc_response.net_error == net::NetError::kDnsFailure
                        ? fault::FailureClass::kDnsFailure
                        : fault::FailureClass::kConnectTimeout;
    return false;
  }

  spec_ = browser_.document_for(url_);

  // Parse static DOM; materialise link elements for the crawler.
  clock.advance(spec_.static_dom_nodes / config.dom_nodes_per_ms);
  auto& document = main_frame_.document();
  for (const auto& path : spec_.link_paths) {
    auto& anchor = document.create_element("a", "");
    document.set_attribute(anchor, "href", path, "");
    document.append_child(document.body(), anchor, "");
  }
  timings_.dom_interactive = clock.now() - nav_start_;

  // Static scripts, document order.
  for (const auto& id : spec_.script_ids) {
    include_script(id, script::Inclusion::kDirect, nullptr);
  }
  timings_.dom_content_loaded = clock.now() - nav_start_;

  // Subresources (images/CSS) and deferred script work.
  clock.advance(skewed_latency(config.subresource_base_ms,
                               config.subresource_jitter_ms, rng));
  loop_.run_until_idle();
  timings_.load_event = clock.now() - nav_start_;

  for (auto* extension : browser_.extensions()) {
    extension->on_page_finished(*this);
  }
  return true;
}

void Page::simulate_scroll() {
  browser_.clock().advance(120);
  loop_.run_until_idle();
}

script::ExecContext Page::make_context(
    const script::ScriptSpec& spec, script::Inclusion inclusion,
    const script::ExecContext* includer) const {
  script::ExecContext ctx;
  ctx.script_id = spec.id;
  ctx.category = spec.category;
  ctx.inclusion = inclusion;
  if (includer != nullptr) {
    ctx.inclusion_chain = includer->inclusion_chain;
    ctx.inclusion_chain.push_back(includer->script_id);
  }
  if (!spec.is_inline) {
    ctx.script_url = expand_site(spec.url_template, url_.host());
    ctx.script_domain = net::etld_plus_one(
        net::Url::must_parse(ctx.script_url).host());
  } else {
    ctx.inline_script = true;
  }
  return ctx;
}

void Page::include_script(std::string_view script_id,
                          script::Inclusion inclusion,
                          const script::ExecContext* includer) {
  if (inclusion_depth_ >= kMaxInclusionDepth) return;
  const auto* spec = browser_.catalog() != nullptr
                         ? browser_.catalog()->find(script_id)
                         : nullptr;
  if (spec == nullptr) return;

  const script::ExecContext ctx = make_context(*spec, inclusion, includer);

  for (auto* extension : browser_.extensions()) {
    if (!extension->allow_script_include(*this, ctx)) return;
  }
  for (auto* extension : browser_.extensions()) {
    extension->on_script_included(*this, ctx);
  }

  bool fetch_failed = false;
  if (!spec->is_inline) {
    // Fetch the script resource.
    const auto& config = browser_.config();
    browser_.clock().advance(static_cast<TimeMillis>(
        config.script_fetch_base_ms +
        browser_.rng().below(
            static_cast<std::uint64_t>(config.script_fetch_jitter_ms) + 1)));
    net::HttpRequest request;
    request.method = net::HttpMethod::kGet;
    request.url = net::Url::must_parse(ctx.script_url);
    request.destination = net::RequestDestination::kScript;
    request.initiator =
        includer != nullptr ? includer->script_url : url_.spec();
    fetch_failed = !fetch(std::move(request), includer).transport_ok();
  }

  // Record the script element in the DOM (owner = includer's domain for
  // dynamic inserts, parser for static).
  auto& document = main_frame_.document();
  auto& element = document.create_element(
      "script", includer != nullptr ? includer->script_domain : "");
  if (!ctx.script_url.empty()) {
    document.set_attribute(element, "src", ctx.script_url,
                           includer != nullptr ? includer->script_domain : "");
  }
  document.append_child(document.body(), element,
                        includer != nullptr ? includer->script_domain : "");

  // A script whose fetch died in transport leaves its element in the DOM
  // but never executes — the degraded-visit shape real crawls record.
  if (fetch_failed) return;

  // Inline scripts get no URL on the stack, but are distinguishable as DOM
  // elements — real extensions can hash their source text. The frame's
  // function name carries that content identity for signature matching.
  FrameGuard guard(stack_, ctx.inline_script ? "" : ctx.script_url,
                   ctx.inline_script ? "inline:" + ctx.script_id : "<top>");
  ++inclusion_depth_;
  script::run_program(spec->ops, ctx, *this);
  --inclusion_depth_;
}

void Page::run_catalog_script(std::string_view script_id) {
  include_script(script_id, script::Inclusion::kDirect, nullptr);
}

void Page::run_as(const script::ExecContext& ctx,
                  const std::function<void(script::PageServices&)>& body) {
  FrameGuard guard(stack_, ctx.inline_script ? "" : ctx.script_url, "<adhoc>");
  body(*this);
}

// ---- subframes (SOP boundary) -------------------------------------------

/// PageServices for a cross-origin subframe: cookie operations hit a
/// partitioned jar, DOM access goes to the frame's own document, and script
/// inclusion/injection stays inside the frame. Nothing here can reach the
/// main frame's first-party jar — SOP at work (paper §3).
///
/// Which partitioned jar depends on the active policy's frame_jar_scope():
/// kPage passes the legacy per-page ephemeral jar keyed by frame origin
/// (`legacy_jar` non-null, byte-identical to the pre-policy simulator);
/// kBrowser leaves it null and routes through Page::policy_read /
/// policy_store, so FPI/CHIPS frame cookies land in browser-level
/// partitions keyed by the top-level site.
class Page::FrameServices final : public script::PageServices {
 public:
  FrameServices(Page& page, webplat::Frame& frame,
                cookies::CookieJar* legacy_jar)
      : page_(page), frame_(frame), legacy_jar_(legacy_jar) {}

  std::string document_cookie_read(const script::ExecContext&) override {
    page_.charge_api_call();
    if (legacy_jar_ != nullptr) {
      return legacy_jar_->document_cookie_string(
          frame_.url(), page_.browser().clock().now());
    }
    std::string out;
    for (const auto& c : read_cookies()) {
      if (!out.empty()) out += "; ";
      out += c.pair();
    }
    return out;
  }
  void document_cookie_write(const script::ExecContext&,
                             std::string_view cookie_line) override {
    page_.charge_api_call();
    if (legacy_jar_ != nullptr) {
      legacy_jar_->set_from_string(frame_.url(), cookie_line,
                                   page_.browser().clock().now());
      return;
    }
    if (const auto parsed = net::parse_set_cookie(cookie_line)) {
      store(*parsed, std::nullopt);
    }
  }
  void cookie_store_get_all(
      const script::ExecContext& ctx,
      std::function<void(std::vector<script::StoreCookie>)> callback)
      override {
    std::vector<script::StoreCookie> cookies;
    for (const auto& c : read_cookies()) {
      cookies.push_back({c.name, c.value});
    }
    (void)ctx;
    callback(std::move(cookies));
  }
  void cookie_store_get(
      const script::ExecContext&, std::string_view name,
      std::function<void(std::optional<script::StoreCookie>)> callback)
      override {
    for (const auto& c : read_cookies()) {
      if (c.name == name) {
        callback(script::StoreCookie{c.name, c.value});
        return;
      }
    }
    callback(std::nullopt);
  }
  void cookie_store_set(const script::ExecContext&, std::string_view name,
                        std::string_view value) override {
    net::ParsedSetCookie parsed;
    parsed.name = std::string(name);
    parsed.value = std::string(value);
    parsed.path = "/";
    store(parsed, cookies::CookieSource::kCookieStore);
  }
  void cookie_store_delete(const script::ExecContext&,
                           std::string_view name) override {
    net::ParsedSetCookie parsed;
    parsed.name = std::string(name);
    parsed.path = "/";
    parsed.max_age_ms = -1000;
    store(parsed, std::nullopt);
  }
  void send_request(const script::ExecContext& ctx,
                    const net::Url& url) override {
    // Frame requests go out, but carry the partitioned jar, not the
    // first-party one; attribution still works via the page stack.
    page_.send_request(ctx, url);
  }
  void inject_script(const script::ExecContext&, std::string_view) override {
    // Scripts injected inside the frame stay inside the frame; the
    // simulator's catalog programs are main-frame behaviours, so this is a
    // no-op beyond the SOP demonstration.
  }
  void set_timeout(const script::ExecContext& ctx, TimeMillis delay_ms,
                   std::function<void()> callback,
                   std::string_view helper) override {
    page_.set_timeout(ctx, delay_ms, std::move(callback), helper);
  }
  webplat::Document& main_document() override { return frame_.document(); }
  TimeMillis now() const override { return page_.browser().clock().now(); }
  script::Rng& rng() override { return page_.browser().rng(); }

 private:
  /// RFC 6265 retrieval for the frame under the active scope; legacy mode
  /// keeps the mutating cookies_for_url (last_access semantics unchanged).
  std::vector<cookies::Cookie> read_cookies() {
    const TimeMillis now = page_.browser().clock().now();
    if (legacy_jar_ != nullptr) {
      return legacy_jar_->cookies_for_url(frame_.url(), now,
                                          cookies::JarApi::kScript);
    }
    return page_.policy_read(
        page_.cookie_ctx(frame_.url(), cookies::JarApi::kScript), now);
  }
  void store(const net::ParsedSetCookie& parsed,
             std::optional<cookies::CookieSource> source) {
    const TimeMillis now = page_.browser().clock().now();
    if (legacy_jar_ != nullptr) {
      legacy_jar_->set(frame_.url(), parsed, now, cookies::JarApi::kScript,
                       source);
      return;
    }
    page_.policy_store(frame_.url(), parsed,
                       page_.cookie_ctx(frame_.url(),
                                        cookies::JarApi::kScript),
                       now, source);
  }

  Page& page_;
  webplat::Frame& frame_;
  /// Legacy per-page partition (FrameJarScope::kPage); null routes through
  /// the browser-level policy partitions (FrameJarScope::kBrowser).
  cookies::CookieJar* legacy_jar_;
};

webplat::Frame& Page::create_subframe(const net::Url& url) {
  return main_frame_.create_subframe(url);
}

void Page::run_in_frame(
    webplat::Frame& frame, const script::ExecContext& ctx,
    const std::function<void(script::PageServices&)>& body) {
  FrameGuard guard(stack_, ctx.inline_script ? "" : ctx.script_url,
                   "<frame>");
  if (frame.same_origin(main_frame_)) {
    // Same-origin frames share the first-party jar and interception stack.
    body(*this);
    return;
  }
  // Under NoDefense/CookieGuard the cross-origin frame gets the legacy
  // per-page ephemeral jar keyed by its origin; FPI/CHIPS route frame
  // cookies into the browser-level partitions instead.
  cookies::CookieJar* legacy_jar =
      browser_.policy().frame_jar_scope() == policy::FrameJarScope::kPage
          ? &partitioned_jars_[frame.url().origin()]
          : nullptr;
  FrameServices services(*this, frame, legacy_jar);
  body(services);
}

// ---- cookie APIs -----------------------------------------------------

policy::CookieAccessContext Page::cookie_ctx(const net::Url& subject,
                                             cookies::JarApi api) const {
  policy::CookieAccessContext access;
  access.top_level_site = top_level_site_;
  access.subject_url = subject;
  access.cross_site = !net::same_site(subject, url_);
  access.script_origin = policy::script_origin_from_stack(stack_);
  access.api = api;
  return access;
}

std::vector<cookies::Cookie> Page::policy_read(
    const policy::CookieAccessContext& ctx, TimeMillis now) {
  const auto& engine = browser_.policy();
  const auto decision = engine.key_for_read(ctx);
  std::vector<cookies::Cookie> out;
  if (!decision.allowed) {
    if (decision.defense_block) {
      ++browser_.policy_stats().reads_blocked;
      obs::metric_add("policy.reads_blocked");
    }
    return out;
  }
  for (const auto& key : decision.keys) {
    // find(), not jar(): reads must not materialise empty partitions.
    auto* jar = browser_.jar_store().find(key);
    if (jar == nullptr) continue;
    for (auto& cookie : jar->cookies_for_url(ctx.subject_url, now, ctx.api)) {
      if (!engine.visible(cookie, ctx)) continue;
      out.push_back(std::move(cookie));
    }
  }
  return out;
}

std::optional<cookies::CookieChange> Page::policy_store(
    const net::Url& source_url, const net::ParsedSetCookie& parsed,
    policy::CookieAccessContext ctx, TimeMillis now,
    std::optional<cookies::CookieSource> source) {
  ctx.partitioned_attribute = parsed.partitioned;
  const auto decision = browser_.policy().key_for_store(ctx);
  if (!decision.allowed) {
    if (decision.defense_block) {
      ++browser_.policy_stats().writes_blocked;
      obs::metric_add("policy.writes_blocked");
    }
    return std::nullopt;
  }
  if (!decision.key.empty()) {
    ++browser_.policy_stats().partitioned_stores;
    obs::metric_add("policy.partitioned_stores");
  }
  return browser_.jar_store().jar(decision.key).set(source_url, parsed, now,
                                                    ctx.api, source);
}

std::string Page::document_cookie_read(const script::ExecContext& ctx) {
  charge_api_call();
  std::string value;
  for (const auto& c : policy_read(cookie_ctx(url_, cookies::JarApi::kScript),
                                   browser_.clock().now())) {
    if (!value.empty()) value += "; ";
    value += c.pair();
  }
  for (auto* extension : browser_.extensions()) {
    value = extension->filter_document_cookie_read(*this, ctx, stack_,
                                                   std::move(value));
  }
  for (auto* extension : browser_.extensions()) {
    extension->on_document_cookie_read(*this, ctx, stack_, value);
  }
  return value;
}

void Page::document_cookie_write(const script::ExecContext& ctx,
                                 std::string_view cookie_line) {
  charge_api_call();
  for (auto* extension : browser_.extensions()) {
    if (!extension->allow_document_cookie_write(*this, ctx, stack_,
                                                cookie_line)) {
      for (auto* observer : browser_.extensions()) {
        observer->on_write_blocked(*this, ctx, stack_, cookie_line);
      }
      return;
    }
  }
  const TimeMillis now = browser_.clock().now();
  const auto parsed = net::parse_set_cookie(cookie_line);
  if (!parsed) {
    // Keep the legacy set_from_string rejection shape: parse failures are
    // jar-level rejections, not policy blocks.
    cookies::CookieChange change;
    change.reject_reason = "unparseable cookie string";
    for (auto* extension : browser_.extensions()) {
      extension->on_script_cookie_change(
          *this, ctx, stack_, change, cookies::CookieSource::kDocumentCookie);
    }
    return;
  }
  const auto change =
      policy_store(url_, *parsed, cookie_ctx(url_, cookies::JarApi::kScript),
                   now);
  if (!change) {
    for (auto* observer : browser_.extensions()) {
      observer->on_write_blocked(*this, ctx, stack_, cookie_line);
    }
    return;
  }
  for (auto* extension : browser_.extensions()) {
    extension->on_script_cookie_change(*this, ctx, stack_, *change,
                                       cookies::CookieSource::kDocumentCookie);
  }
}

void Page::cookie_store_get_all(
    const script::ExecContext& ctx,
    std::function<void(std::vector<script::StoreCookie>)> callback) {
  charge_api_call();
  const webplat::StackTrace captured = stack_;
  loop_.post_microtask(
      [this, ctx, callback = std::move(callback), captured]() {
        const webplat::StackTrace saved = std::exchange(stack_, captured);
        std::vector<script::StoreCookie> cookies;
        for (const auto& c :
             policy_read(cookie_ctx(url_, cookies::JarApi::kScript),
                         browser_.clock().now())) {
          cookies.push_back({c.name, c.value});
        }
        for (auto* extension : browser_.extensions()) {
          extension->filter_store_read(*this, ctx, stack_, cookies);
        }
        for (auto* extension : browser_.extensions()) {
          extension->on_store_read(*this, ctx, stack_, cookies);
        }
        callback(std::move(cookies));
        stack_ = saved;
      },
      captured);
}

void Page::cookie_store_get(
    const script::ExecContext& ctx, std::string_view name,
    std::function<void(std::optional<script::StoreCookie>)> callback) {
  charge_api_call();
  const webplat::StackTrace captured = stack_;
  std::string wanted(name);
  loop_.post_microtask(
      [this, ctx, wanted, callback = std::move(callback), captured]() {
        const webplat::StackTrace saved = std::exchange(stack_, captured);
        std::vector<script::StoreCookie> cookies;
        for (const auto& c :
             policy_read(cookie_ctx(url_, cookies::JarApi::kScript),
                         browser_.clock().now())) {
          if (c.name == wanted) cookies.push_back({c.name, c.value});
        }
        // The same per-origin filter applies to single-cookie lookups.
        for (auto* extension : browser_.extensions()) {
          extension->filter_store_read(*this, ctx, stack_, cookies);
        }
        for (auto* extension : browser_.extensions()) {
          extension->on_store_read(*this, ctx, stack_, cookies);
        }
        callback(cookies.empty()
                     ? std::nullopt
                     : std::optional<script::StoreCookie>(cookies.front()));
        stack_ = saved;
      },
      captured);
}

void Page::cookie_store_set(const script::ExecContext& ctx,
                            std::string_view name, std::string_view value) {
  charge_api_call();
  const webplat::StackTrace captured = stack_;
  std::string cookie_name(name);
  std::string cookie_value(value);
  loop_.post_microtask(
      [this, ctx, cookie_name, cookie_value, captured]() {
        const webplat::StackTrace saved = std::exchange(stack_, captured);
        bool allowed = true;
        for (auto* extension : browser_.extensions()) {
          if (!extension->allow_store_write(*this, ctx, stack_, cookie_name,
                                            cookie_value,
                                            /*is_delete=*/false)) {
            allowed = false;
            break;
          }
        }
        if (allowed) {
          net::ParsedSetCookie parsed;
          parsed.name = cookie_name;
          parsed.value = cookie_value;
          parsed.path = "/";
          const auto change = policy_store(
              url_, parsed, cookie_ctx(url_, cookies::JarApi::kScript),
              browser_.clock().now(), cookies::CookieSource::kCookieStore);
          if (change) {
            for (auto* extension : browser_.extensions()) {
              extension->on_script_cookie_change(
                  *this, ctx, stack_, *change,
                  cookies::CookieSource::kCookieStore);
            }
          } else {
            for (auto* extension : browser_.extensions()) {
              extension->on_write_blocked(*this, ctx, stack_,
                                          cookie_name + "=" + cookie_value);
            }
          }
        } else {
          for (auto* extension : browser_.extensions()) {
            extension->on_write_blocked(*this, ctx, stack_,
                                        cookie_name + "=" + cookie_value);
          }
        }
        stack_ = saved;
      },
      captured);
}

void Page::cookie_store_delete(const script::ExecContext& ctx,
                               std::string_view name) {
  charge_api_call();
  const webplat::StackTrace captured = stack_;
  std::string cookie_name(name);
  loop_.post_microtask(
      [this, ctx, cookie_name, captured]() {
        const webplat::StackTrace saved = std::exchange(stack_, captured);
        bool allowed = true;
        for (auto* extension : browser_.extensions()) {
          if (!extension->allow_store_write(*this, ctx, stack_, cookie_name,
                                            "", /*is_delete=*/true)) {
            allowed = false;
            break;
          }
        }
        if (allowed) {
          net::ParsedSetCookie parsed;
          parsed.name = cookie_name;
          parsed.path = "/";
          parsed.max_age_ms = -1000;
          const auto change = policy_store(
              url_, parsed, cookie_ctx(url_, cookies::JarApi::kScript),
              browser_.clock().now(), cookies::CookieSource::kCookieStore);
          if (change) {
            for (auto* extension : browser_.extensions()) {
              extension->on_script_cookie_change(
                  *this, ctx, stack_, *change,
                  cookies::CookieSource::kCookieStore);
            }
          } else {
            for (auto* extension : browser_.extensions()) {
              extension->on_write_blocked(*this, ctx, stack_,
                                          cookie_name + "=");
            }
          }
        } else {
          for (auto* extension : browser_.extensions()) {
            extension->on_write_blocked(*this, ctx, stack_, cookie_name + "=");
          }
        }
        stack_ = saved;
      },
      captured);
}

// ---- network / inclusion / scheduling ----------------------------------

void Page::send_request(const script::ExecContext& ctx, const net::Url& url) {
  charge_api_call();
  net::HttpRequest request;
  request.method = net::HttpMethod::kGet;
  request.url = url;
  request.destination = net::RequestDestination::kXhr;
  request.initiator = ctx.inline_script ? url_.spec() : ctx.script_url;
  fetch(std::move(request), &ctx);
}

void Page::inject_script(const script::ExecContext& includer,
                         std::string_view script_id) {
  include_script(script_id, script::Inclusion::kIndirect, &includer);
}

void Page::set_timeout(const script::ExecContext& ctx, TimeMillis delay_ms,
                       std::function<void()> callback,
                       std::string_view helper_script_url) {
  const webplat::StackTrace scheduling = stack_;
  std::string helper(helper_script_url);
  loop_.post_task(
      [this, ctx, callback = std::move(callback), helper]() {
        // Fresh stack for the new task; async stack traces (when enabled)
        // recover the scheduling frames, marked async.
        webplat::StackTrace task_stack;
        if (browser_.config().async_stack_traces) {
          task_stack.prepend_async(loop_.current_task_scheduling_stack());
        }
        const webplat::StackTrace saved = std::exchange(stack_, task_stack);
        if (!helper.empty()) {
          stack_.push({helper, "helperCallback", false});
        }
        callback();
        stack_ = saved;
        (void)ctx;
      },
      delay_ms, scheduling);
}

net::HttpResponse Page::fetch(net::HttpRequest request,
                              const script::ExecContext* initiator) {
  const TimeMillis now = browser_.clock().now();

  for (auto* extension : browser_.extensions()) {
    if (!extension->allow_request(*this, request, initiator)) {
      net::HttpResponse blocked;
      blocked.status = 0;  // net::ERR_BLOCKED_BY_CLIENT
      return blocked;
    }
  }

  // Cookie attachment goes through the partitioning policy. Under NoDefense
  // this is exactly the legacy rule — attach the first-party jar to
  // same-site requests only (a post-third-party-cookie browser); FPI/CHIPS
  // additionally consult the request's partitions.
  const auto http_ctx = cookie_ctx(request.url, cookies::JarApi::kHttp);
  {
    std::string cookie_header;
    for (const auto& c : policy_read(http_ctx, now)) {
      if (!cookie_header.empty()) cookie_header += "; ";
      cookie_header += c.pair();
    }
    if (!cookie_header.empty()) request.headers.set("Cookie", cookie_header);
  }

  for (auto* extension : browser_.extensions()) {
    extension->on_request_will_be_sent(*this, request, initiator, stack_);
  }

  net::HttpResponse response = browser_.network().dispatch(request);

  // Set-Cookie goes through the policy too. Under NoDefense cross-site
  // response cookies are refused — they would be third-party cookies, which
  // are phased out (§1) — exactly the legacy same-site gate; CHIPS lets
  // `Partitioned` ones through into the request's partition. Refused
  // headers produce no CookieChange, as before.
  std::vector<cookies::CookieChange> changes;
  for (const auto& header : response.set_cookie_headers()) {
    if (const auto parsed = net::parse_set_cookie(header)) {
      if (auto change = policy_store(request.url, *parsed, http_ctx, now)) {
        changes.push_back(std::move(*change));
      }
    }
  }
  for (auto* extension : browser_.extensions()) {
    extension->on_headers_received(*this, request, response, changes);
  }
  return response;
}

}  // namespace cg::browser
