// Script catalog: id → ScriptSpec registry shared by the corpus and browser.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "script/script_spec.h"

namespace cg::browser {

class ScriptCatalog {
 public:
  void add(script::ScriptSpec spec) {
    const std::string id = spec.id;
    specs_.insert_or_assign(id, std::move(spec));
  }

  const script::ScriptSpec* find(std::string_view id) const {
    const auto it = specs_.find(std::string(id));
    return it == specs_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return specs_.size(); }
  const std::map<std::string, script::ScriptSpec>& all() const {
    return specs_;
  }

  /// Applies `fn` to every spec (corpus post-processing).
  void transform(const std::function<void(script::ScriptSpec&)>& fn) {
    for (auto& [id, spec] : specs_) fn(spec);
  }

 private:
  std::map<std::string, script::ScriptSpec> specs_;
};

}  // namespace cg::browser
