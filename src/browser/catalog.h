// Script catalog: id → ScriptSpec registry shared by the corpus and browser.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "script/script_spec.h"

namespace cg::browser {

class ScriptCatalog {
 public:
  void add(script::ScriptSpec spec) {
    const std::string id = spec.id;
    specs_.insert_or_assign(id, std::move(spec));
  }

  const script::ScriptSpec* find(std::string_view id) const {
    const auto it = specs_.find(std::string(id));
    if (it != specs_.end()) return &it->second;
    return parent_ == nullptr ? nullptr : parent_->find(id);
  }

  /// Chains lookups: find() falls through to `parent` for ids not present
  /// here, so a per-site overlay holds only that site's own specs while the
  /// shared vendor population lives once in the parent. Non-owning; the
  /// parent must outlive this catalog. `all()`/`transform()`/`size()` stay
  /// local to this catalog's own specs.
  void set_parent(const ScriptCatalog* parent) { parent_ = parent; }
  const ScriptCatalog* parent() const { return parent_; }

  std::size_t size() const { return specs_.size(); }
  const std::map<std::string, script::ScriptSpec>& all() const {
    return specs_;
  }

  /// Applies `fn` to every spec (corpus post-processing).
  void transform(const std::function<void(script::ScriptSpec&)>& fn) {
    for (auto& [id, spec] : specs_) fn(spec);
  }

 private:
  std::map<std::string, script::ScriptSpec> specs_;
  const ScriptCatalog* parent_ = nullptr;
};

}  // namespace cg::browser
