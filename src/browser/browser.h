// The simulated browser: clock, cookie jar, network, catalog, extensions.
//
// One Browser instance models one fresh-profile visit (the crawler creates a
// new Browser per site, as the paper's Selenium harness launched a fresh
// Chrome per visit). Navigations within the visit share the jar, the clock,
// and the extension set.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "browser/catalog.h"
#include "browser/document_spec.h"
#include "browser/extension.h"
#include "browser/network.h"
#include "cookies/cookie_jar.h"
#include "cookies/partitioned_store.h"
#include "fault/fault.h"
#include "net/clock.h"
#include "net/dns.h"
#include "net/url.h"
#include "policy/partition_policy.h"
#include "script/rng.h"

namespace cg::browser {

class Page;

/// Outcome of a navigation. Navigation can genuinely fail — DNS resolution,
/// connect timeouts — so callers get a page *or* a failure class, never an
/// unconditional page. Pointer-like accessors keep the happy path reading
/// as before: `auto page = browser.navigate(url); page->simulate_scroll();`.
struct [[nodiscard]] NavigationResult {
  std::unique_ptr<Page> page;
  fault::FailureClass failure = fault::FailureClass::kNone;

  // Out-of-line so Page can stay incomplete for header-only consumers.
  NavigationResult();
  NavigationResult(std::unique_ptr<Page> page, fault::FailureClass failure);
  NavigationResult(NavigationResult&&) noexcept;
  NavigationResult& operator=(NavigationResult&&) noexcept;
  ~NavigationResult();

  bool ok() const { return page != nullptr; }
  explicit operator bool() const { return ok(); }
  Page* operator->() const { return page.get(); }
  Page& operator*() const { return *page; }
  Page* get() const { return page.get(); }
  /// Successful results convert to the owned page (legacy callers that
  /// store a std::unique_ptr<Page>).
  operator std::unique_ptr<Page>() &&;
};

/// Timing-model and engine parameters. Millisecond costs were calibrated so
/// the unmodified browser's page-load distribution lands near the paper's
/// Table 4 "Normal" column (see perf/README in DESIGN.md).
struct BrowserConfig {
  /// Reconstruct async stack traces across setTimeout/promise boundaries
  /// (paper §8 discusses attribution with and without this).
  bool async_stack_traces = true;

  /// Wall-clock at visit start. The crawler staggers this per site — a crawl
  /// spans days, and identifier timestamps must differ across visits.
  TimeMillis clock_start = SimClock::kDefaultStart;

  /// Network fetch latencies are right-skewed (base + jitter * u1*u2*u3
  /// with u_i uniform): calibrated so the plain browser's page-load
  /// mean/median distribution lands on Table 4's "Normal" column.
  TimeMillis doc_fetch_base_ms = 50;
  TimeMillis doc_fetch_jitter_ms = 11000;
  TimeMillis script_fetch_base_ms = 2;
  TimeMillis script_fetch_jitter_ms = 10;
  /// Base compute cost of one scripted cookie/network API call.
  TimeMillis api_base_cost_ms = 1;
  /// DOM parse speed.
  int dom_nodes_per_ms = 8;
  /// Images/CSS after DCL, before the load event (skewed like doc fetch).
  TimeMillis subresource_base_ms = 200;
  TimeMillis subresource_jitter_ms = 7200;
};

/// Per-visit accounting of partitioning-policy effects, aggregated into the
/// defense bake-off matrix (obs `policy.*` counters carry the same tallies
/// through sharded crawls).
struct PolicyStats {
  std::uint64_t writes_blocked = 0;    // stores the policy refused
  std::uint64_t reads_blocked = 0;     // retrievals the policy refused
  std::uint64_t partitioned_stores = 0;  // stores into a non-default partition
};

class Browser {
 public:
  using DocumentProvider = std::function<DocumentSpec(const net::Url&)>;

  Browser(BrowserConfig config, std::uint64_t seed);
  ~Browser();

  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  const BrowserConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  /// The default partition — the classic single first-party jar. Everything
  /// written against the one-jar model (tests, examples, CookieGuard's
  /// metadata bootstrap) keeps reading the same jar it always did.
  cookies::CookieJar& jar() { return jar_store_.default_jar(); }
  cookies::PartitionedJarStore& jar_store() { return jar_store_; }
  const cookies::PartitionedJarStore& jar_store() const { return jar_store_; }
  NetworkLayer& network() { return network_; }
  script::Rng& rng() { return rng_; }
  net::DnsResolver& dns() { return dns_; }
  const net::DnsResolver& dns() const { return dns_; }

  /// Active partitioning policy (never null; NoDefense by default — the
  /// status-quo single jar, byte-identical to the pre-policy simulator).
  /// Engines are stateless and shared; null resets to NoDefense.
  void set_policy(const policy::PartitionPolicy* policy) {
    policy_ = policy != nullptr
                  ? policy
                  : &policy::engine_for(policy::PolicyKind::kNone);
  }
  const policy::PartitionPolicy& policy() const { return *policy_; }

  PolicyStats& policy_stats() { return policy_stats_; }
  const PolicyStats& policy_stats() const { return policy_stats_; }

  /// Catalog and document provider are owned by the corpus (outlives the
  /// browser).
  void set_catalog(const ScriptCatalog* catalog) { catalog_ = catalog; }
  const ScriptCatalog* catalog() const { return catalog_; }

  void set_document_provider(DocumentProvider provider) {
    document_provider_ = std::move(provider);
  }
  DocumentSpec document_for(const net::Url& url) const {
    return document_provider_ ? document_provider_(url) : DocumentSpec{};
  }

  /// Extensions are installed in order; non-owning (caller keeps alive).
  void add_extension(Extension* extension);
  const std::vector<Extension*>& extensions() const { return extensions_; }

  /// Total simulated per-API-call interception overhead of all extensions.
  TimeMillis extension_api_overhead_ms() const;

  /// Navigates to `url`: resolves DNS, creates and fully loads a Page. The
  /// first navigation fires Extension::on_visit_start. Fails (null page +
  /// failure class) when resolution fails or the document fetch dies in
  /// transport; with no fault injection armed it always succeeds.
  NavigationResult navigate(const net::Url& url);

 private:
  BrowserConfig config_;
  SimClock clock_;
  script::Rng rng_;
  cookies::PartitionedJarStore jar_store_;
  NetworkLayer network_;
  net::DnsResolver dns_;
  const ScriptCatalog* catalog_ = nullptr;
  DocumentProvider document_provider_;
  std::vector<Extension*> extensions_;
  const policy::PartitionPolicy* policy_ =
      &policy::engine_for(policy::PolicyKind::kNone);
  PolicyStats policy_stats_;
  bool visit_started_ = false;
};

}  // namespace cg::browser
