// Extension hook interface — the browser's embedder API for extensions.
//
// Mirrors the capabilities the paper's two extensions rely on:
//  * wrapping document.cookie / cookieStore at the page boundary
//    (Object.defineProperty in the real implementation, §4.1/§6.2),
//  * webRequest.onHeadersReceived for Set-Cookie capture,
//  * Chrome-Debugger-style Network.requestWillBeSent with initiator stacks.
//
// Hooks receive both the capture-time JS stack (what a real extension can
// see) and the ground-truth ExecContext (what only the simulator knows).
// Production hooks must attribute from the stack alone; the ground truth is
// for evaluating attribution accuracy.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cookies/cookie.h"
#include "cookies/cookie_jar.h"
#include "net/http.h"
#include "script/exec_context.h"
#include "script/page_services.h"
#include "webplat/stack_trace.h"

namespace cg::browser {

class Page;
class Browser;

class Extension {
 public:
  virtual ~Extension() = default;

  virtual std::string name() const = 0;

  /// A fresh browser visit begins (new jar): reset per-visit state.
  virtual void on_visit_start(Browser& browser) { (void)browser; }
  /// A navigation committed; content scripts would be injected here.
  virtual void on_page_start(Page& page) { (void)page; }
  /// Page reached its load event.
  virtual void on_page_finished(Page& page) { (void)page; }

  // ---- cookie API interception (content-script layer) -----------------

  /// Filter the string document.cookie returns. Called in registration
  /// order; each extension receives the previous one's output.
  virtual std::string filter_document_cookie_read(
      Page& page, const script::ExecContext& ctx,
      const webplat::StackTrace& stack, std::string value) {
    (void)page;
    (void)ctx;
    (void)stack;
    return value;
  }

  /// Veto a document.cookie write. Returning false blocks the jar update.
  virtual bool allow_document_cookie_write(Page& page,
                                           const script::ExecContext& ctx,
                                           const webplat::StackTrace& stack,
                                           std::string_view cookie_line) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)cookie_line;
    return true;
  }

  /// Filter the structured list cookieStore.getAll() resolves with.
  virtual void filter_store_read(Page& page, const script::ExecContext& ctx,
                                 const webplat::StackTrace& stack,
                                 std::vector<script::StoreCookie>& cookies) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)cookies;
  }

  /// Veto cookieStore.set / cookieStore.delete.
  virtual bool allow_store_write(Page& page, const script::ExecContext& ctx,
                                 const webplat::StackTrace& stack,
                                 std::string_view name,
                                 std::string_view value, bool is_delete) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)name;
    (void)value;
    (void)is_delete;
    return true;
  }

  // ---- observations ----------------------------------------------------

  virtual void on_document_cookie_read(Page& page,
                                       const script::ExecContext& ctx,
                                       const webplat::StackTrace& stack,
                                       const std::string& returned_value) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)returned_value;
  }

  virtual void on_store_read(Page& page, const script::ExecContext& ctx,
                             const webplat::StackTrace& stack,
                             const std::vector<script::StoreCookie>& cookies) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)cookies;
  }

  /// A script-initiated jar change completed (document.cookie or
  /// cookieStore). Blocked writes never reach this hook.
  virtual void on_script_cookie_change(Page& page,
                                       const script::ExecContext& ctx,
                                       const webplat::StackTrace& stack,
                                       const cookies::CookieChange& change,
                                       cookies::CookieSource api) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)change;
    (void)api;
  }

  /// A write was vetoed by some extension (for blocked-action accounting).
  virtual void on_write_blocked(Page& page, const script::ExecContext& ctx,
                                const webplat::StackTrace& stack,
                                std::string_view cookie_line) {
    (void)page;
    (void)ctx;
    (void)stack;
    (void)cookie_line;
  }

  /// webRequest.onHeadersReceived: response arrived; `changes` are the jar
  /// updates its Set-Cookie headers caused.
  virtual void on_headers_received(
      Page& page, const net::HttpRequest& request,
      const net::HttpResponse& response,
      const std::vector<cookies::CookieChange>& changes) {
    (void)page;
    (void)request;
    (void)response;
    (void)changes;
  }

  /// Veto an outgoing request before it leaves (content blockers). Vetoed
  /// requests are dropped silently: no response, no observer notifications.
  virtual bool allow_request(Page& page, const net::HttpRequest& request,
                             const script::ExecContext* initiator) {
    (void)page;
    (void)request;
    (void)initiator;
    return true;
  }

  /// Network.requestWillBeSent: outgoing request with initiator stack.
  /// `initiator` is nullptr for browser-initiated (navigation) requests.
  virtual void on_request_will_be_sent(Page& page,
                                       const net::HttpRequest& request,
                                       const script::ExecContext* initiator,
                                       const webplat::StackTrace& stack) {
    (void)page;
    (void)request;
    (void)initiator;
    (void)stack;
  }

  /// Veto a script inclusion before it executes (content blockers work
  /// here; CookieGuard deliberately does not).
  virtual bool allow_script_include(Page& page,
                                    const script::ExecContext& ctx) {
    (void)page;
    (void)ctx;
    return true;
  }

  /// A script entered the main frame (static or dynamic inclusion).
  virtual void on_script_included(Page& page,
                                  const script::ExecContext& ctx) {
    (void)page;
    (void)ctx;
  }

  // ---- cost model --------------------------------------------------------

  /// Simulated per-intercepted-API-call overhead this extension adds
  /// (content-script wrapper + messaging round trip), in milliseconds.
  virtual TimeMillis api_call_overhead_ms() const { return 0; }
};

}  // namespace cg::browser
