#include "baselines/baselines.h"

#include "browser/page.h"

namespace cg::baselines {

void ThirdPartyCookieBlocking::on_headers_received(
    browser::Page& page, const net::HttpRequest& request,
    const net::HttpResponse& response,
    const std::vector<cookies::CookieChange>& changes) {
  (void)changes;
  if (!net::same_site(request.url, page.url()) &&
      !response.set_cookie_headers().empty()) {
    ++cross_site_headers_seen_;
  }
}

std::vector<std::string> FilterListBlocker::default_blocklist() {
  return {
      "google-analytics.com", "googletagmanager.com", "doubleclick.net",
      "googlesyndication.com", "facebook.net",        "facebook.com",
      "bing.com",             "clarity.ms",           "yandex.ru",
      "pinimg.com",           "pinterest.com",        "licdn.com",
      "linkedin.com",         "tiktok.com",           "criteo.net",
      "criteo.com",           "pubmatic.com",         "openx.net",
      "amazon-adsystem.com",  "adsrvr.org",           "rubiconproject.com",
      "casalemedia.com",      "indexww.com",          "liadm.com",
      "liveintent.com",       "taboola.com",          "outbrain.com",
      "crwdcntrl.net",        "quantserve.com",       "hotjar.com",
      "segment.com",          "segment.io",           "hs-scripts.com",
      "hubspot.com",          "marketo.net",          "demdex.net",
      "adobedtm.com",         "sharethis.com",        "statcounter.com",
      "yimg.jp",              "sc-static.net",        "snapchat.com",
      "gaconnector.com",      "lazyload-ads.com",
  };
}

FilterListBlocker::FilterListBlocker(std::vector<std::string> blocked_domains)
    : blocked_(blocked_domains.begin(), blocked_domains.end()) {}

bool FilterListBlocker::allow_script_include(browser::Page& page,
                                             const script::ExecContext& ctx) {
  (void)page;
  if (!ctx.script_domain.empty() && is_blocked(ctx.script_domain)) {
    ++stats_.scripts_blocked;
    return false;
  }
  return true;
}

bool FilterListBlocker::allow_request(browser::Page& page,
                                      const net::HttpRequest& request,
                                      const script::ExecContext* initiator) {
  (void)page;
  (void)initiator;
  if (request.destination == net::RequestDestination::kDocument) return true;
  if (is_blocked(request.url.site())) {
    ++stats_.requests_blocked;
    return false;
  }
  return true;
}

}  // namespace cg::baselines
