// Baseline defenses the paper's background section argues are insufficient
// for the main-frame cookie-jar problem (§2.1), implemented as extensions so
// bench_baselines can compare them against CookieGuard on the same corpus:
//
//   * Third-party cookie blocking — stops cross-site Set-Cookie, which the
//     simulated browser already enforces; it does nothing about scripts in
//     the main frame ghost-writing first-party cookies.
//   * Storage partitioning (ITP / Total Cookie Protection style) — isolates
//     storage per top-level site, but every script in the main frame is in
//     the *same* top-level context, so the shared first-party jar is
//     untouched.
//   * Filter-list content blocking (EasyList style) — removes known tracker
//     scripts wholesale. Effective against listed domains, blind to the
//     long tail, CNAME-cloaked scripts, and first-party proxies, and it
//     takes the vendor's legitimate functionality down with it.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "browser/extension.h"

namespace cg::baselines {

/// Explicit third-party cookie blocking. The simulated browser (like every
/// 2025 browser, §1) already rejects cross-site Set-Cookie, so this
/// extension only *counts* what it would have blocked — demonstrating the
/// mechanism is orthogonal to the first-party jar problem.
class ThirdPartyCookieBlocking final : public browser::Extension {
 public:
  std::string name() const override { return "3p-cookie-blocking"; }
  void on_headers_received(
      browser::Page& page, const net::HttpRequest& request,
      const net::HttpResponse& response,
      const std::vector<cookies::CookieChange>& changes) override;

  std::uint64_t cross_site_headers_seen() const {
    return cross_site_headers_seen_;
  }

 private:
  std::uint64_t cross_site_headers_seen_ = 0;
};

/// Per-top-level-site storage partitioning. Partitioning keys on the
/// top-level site; main-frame scripts all share that key, so this is a
/// documented no-op for the paper's threat model (§2.1: "they do not
/// isolate scripts within the same top-level context").
class StoragePartitioning final : public browser::Extension {
 public:
  std::string name() const override { return "storage-partitioning"; }
};

/// EasyList-style content blocker: drops script inclusions from, and
/// requests to, a fixed list of known tracker domains (eTLD+1).
class FilterListBlocker final : public browser::Extension {
 public:
  /// Curated list covering the ecosystem's major ad/tracking vendors —
  /// what a well-maintained filter list would know about. Long-tail and
  /// cloaked domains are deliberately absent.
  static std::vector<std::string> default_blocklist();

  explicit FilterListBlocker(
      std::vector<std::string> blocked_domains = default_blocklist());

  std::string name() const override { return "filter-list-blocker"; }

  bool allow_script_include(browser::Page& page,
                            const script::ExecContext& ctx) override;
  bool allow_request(browser::Page& page, const net::HttpRequest& request,
                     const script::ExecContext* initiator) override;

  struct Stats {
    std::uint64_t scripts_blocked = 0;
    std::uint64_t requests_blocked = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool is_blocked(std::string_view domain) const {
    return blocked_.find(std::string(domain)) != blocked_.end();
  }

  std::set<std::string> blocked_;
  Stats stats_;
};

}  // namespace cg::baselines
