#include "entities/entity_map.h"

namespace cg::entities {

void EntityMap::add(std::string_view entity,
                    std::initializer_list<std::string_view> domains) {
  for (const auto domain : domains) add_domain(entity, domain);
}

void EntityMap::add_domain(std::string_view entity, std::string_view domain) {
  domain_to_entity_.insert_or_assign(std::string(domain),
                                     std::string(entity));
}

std::string EntityMap::entity_for(std::string_view domain) const {
  const auto it = domain_to_entity_.find(domain);
  return it == domain_to_entity_.end() ? std::string(domain) : it->second;
}

bool EntityMap::same_entity(std::string_view domain_a,
                            std::string_view domain_b) const {
  return !domain_a.empty() && entity_for(domain_a) == entity_for(domain_b);
}

std::vector<std::string> EntityMap::domains_of(std::string_view entity) const {
  std::vector<std::string> out;
  for (const auto& [domain, owner] : domain_to_entity_) {
    if (owner == entity) out.push_back(domain);
  }
  return out;
}

const EntityMap& EntityMap::builtin() {
  static const EntityMap map = [] {
    EntityMap m;
    m.add("Google", {"google.com", "googletagmanager.com",
                     "google-analytics.com", "doubleclick.net",
                     "googlesyndication.com", "googleadservices.com",
                     "gstatic.com", "youtube.com", "googleapis.com"});
    m.add("Meta", {"facebook.com", "facebook.net", "fbcdn.net",
                   "instagram.com"});
    m.add("Microsoft", {"microsoft.com", "bing.com", "live.com",
                        "clarity.ms", "microsoftonline.com", "msauth.net",
                        "azureedge.net"});
    m.add("LinkedIn", {"linkedin.com", "licdn.com", "ads-linkedin.com"});
    m.add("Amazon", {"amazon.com", "amazon-adsystem.com", "media-amazon.com"});
    m.add("Criteo", {"criteo.com", "criteo.net"});
    m.add("Yandex", {"yandex.ru", "ya.ru", "yastatic.net", "webvisor.org"});
    m.add("Pinterest", {"pinterest.com", "pinimg.com"});
    m.add("HubSpot", {"hubspot.com", "hs-scripts.com", "hs-analytics.net",
                      "hsforms.com", "hubapi.com"});
    m.add("Adobe", {"adobe.com", "adobedtm.com", "omtrdc.net", "demdex.net",
                    "everesttech.net", "marketo.net", "marketo.com"});
    m.add("OpenX", {"openx.net", "openx.com"});
    m.add("PubMatic", {"pubmatic.com"});
    m.add("Lotame", {"crwdcntrl.net", "lotame.com"});
    m.add("Ketch", {"ketchjs.com", "ketchcdn.com"});
    m.add("Shopify", {"shopify.com", "shopifycloud.com", "shopifysvc.com"});
    m.add("Admiral", {"getadmiral.com", "admiral.media"});
    m.add("OneTrust", {"onetrust.com", "cookielaw.org", "cookiepro.com"});
    m.add("Osano", {"osano.com"});
    m.add("CookieYes", {"cookieyes.com", "cdn-cookieyes.com"});
    m.add("CookieScript", {"cookie-script.com"});
    m.add("Tealium", {"tealium.com", "tiqcdn.com", "tealiumiq.com"});
    m.add("Segment.io", {"segment.com", "segment.io", "segmentcdn.com"});
    m.add("X", {"twitter.com", "x.com", "twimg.com", "ads-twitter.com"});
    m.add("TikTok", {"tiktok.com", "tiktokcdn.com", "ttwstatic.com"});
    m.add("Taboola", {"taboola.com", "taboolasyndication.com"});
    m.add("Outbrain", {"outbrain.com", "outbrainimg.com"});
    m.add("Hotjar", {"hotjar.com", "hotjar.io"});
    m.add("Functional Software", {"sentry.io", "sentry-cdn.com"});
    m.add("New Relic", {"newrelic.com", "nr-data.net"});
    m.add("Snap", {"snapchat.com", "sc-static.net"});
    m.add("StatCounter", {"statcounter.com"});
    m.add("Quantcast", {"quantcast.com", "quantserve.com", "quantcount.com"});
    m.add("LiveIntent", {"liveintent.com", "licasd.com"});
    m.add("The Trade Desk", {"thetradedesk.com", "adsrvr.org"});
    m.add("Magnite", {"magnite.com", "rubiconproject.com"});
    m.add("Index Exchange", {"indexexchange.com", "casalemedia.com"});
    m.add("ShareThis", {"sharethis.com"});
    m.add("Cloudflare", {"cloudflare.com", "cdnjs.com", "jsdelivr.net"});
    m.add("Okta", {"okta.com", "oktacdn.com"});
    m.add("Auth0", {"auth0.com"});
    m.add("Intercom", {"intercom.io", "intercomcdn.com"});
    m.add("Zendesk", {"zendesk.com", "zdassets.com"});
    m.add("Mediavine", {"mediavine.com"});
    m.add("AdThrive", {"adthrive.com", "raptive.com"});
    m.add("Yahoo Japan", {"yimg.jp", "yahoo.co.jp"});
    m.add("GA Connector", {"gaconnector.com"});
    m.add("Optimizely", {"optimizely.com"});
    m.add("Salesforce.com", {"salesforce.com", "pardot.com", "krxd.net"});
    m.add("Oracle", {"bluekai.com", "addthis.com", "bkrtx.com"});
    m.add("Cxense", {"cxense.com"});
    m.add("Zoom", {"zoom.us", "zoomgov.com"});
    return m;
  }();
  return map;
}

}  // namespace cg::entities
