// Domain → owning-entity map (substitute for DuckDuckGo Tracker Radar).
//
// The paper uses the Tracker Radar entity list twice: to consolidate
// exfiltrator/destination domains into entities (Table 2, Table 5) and as
// CookieGuard's organizational whitelist that groups same-entity domains
// (facebook.com ↔ fbcdn.net), cutting breakage from 11% to 3% (§7.2).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cg::entities {

class EntityMap {
 public:
  /// The built-in map covering every vendor in the ecosystem catalog.
  static const EntityMap& builtin();

  /// Registers `domains` (eTLD+1) as owned by `entity`.
  void add(std::string_view entity,
           std::initializer_list<std::string_view> domains);
  void add_domain(std::string_view entity, std::string_view domain);

  /// Owning entity of an eTLD+1; unmapped domains are their own entity
  /// (Tracker Radar behaviour for unknown domains).
  std::string entity_for(std::string_view domain) const;

  /// True when both domains map to the same entity. Unmapped domains only
  /// match themselves.
  bool same_entity(std::string_view domain_a, std::string_view domain_b) const;

  /// All registered domains of an entity (empty for unknown entities).
  std::vector<std::string> domains_of(std::string_view entity) const;

  std::size_t domain_count() const { return domain_to_entity_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> domain_to_entity_;
};

}  // namespace cg::entities
