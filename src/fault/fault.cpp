#include "fault/fault.h"

#include <limits>

namespace cg::fault {
namespace {

// Per-site stream: decisions must not depend on crawl order or on other
// sites' draws, so each rank forks its own SplitMix64 stream.
constexpr std::uint64_t kRankSalt = 0xFA177ULL;
constexpr std::uint64_t kRankMix = 0x9E3779B97F4A7C15ULL;

// Per-op streams for the write-side plan; a distinct salt keeps the I/O
// schedule uncorrelated with the site-fault schedule under a shared seed.
constexpr std::uint64_t kOpSalt = 0x10FA17ULL;
constexpr std::uint64_t kCrashSalt = 0xC4A54ULL;

}  // namespace

FaultDecision FaultPlan::decide(int rank, int attempt,
                                TimeMillis visit_deadline_ms) const {
  FaultDecision out;
  if (!enabled_ || attempt < 0) return out;

  script::Rng rng(params_.seed ^
                  (kRankSalt + static_cast<std::uint64_t>(rank) * kRankMix));
  if (!rng.chance(params_.site_fault_rate)) return out;

  static constexpr FailureClass kClasses[] = {
      FailureClass::kDnsFailure,        FailureClass::kConnectTimeout,
      FailureClass::kDeadlineExceeded,  FailureClass::kTruncatedHeaders,
      FailureClass::kExtensionCrash,    FailureClass::kSubresourceFailure,
  };
  const double weights[] = {
      params_.dns_weight,   params_.connect_weight, params_.stall_weight,
      params_.truncate_weight, params_.crash_weight, params_.subresource_weight,
  };
  double total = 0;
  for (const double w : weights) total += w > 0 ? w : 0;
  FailureClass cls = FailureClass::kSubresourceFailure;
  if (total > 0) {
    double roll = rng.uniform() * total;
    for (int i = 0; i < 6; ++i) {
      const double w = weights[i] > 0 ? weights[i] : 0;
      if (roll < w) {
        cls = kClasses[i];
        break;
      }
      roll -= w;
    }
  }

  // Transient faults clear after one or two failed attempts; permanent ones
  // survive every retry. Drawn before the attempt check so the whole
  // schedule for a site is fixed no matter which attempt asks.
  const bool permanent = rng.chance(params_.permanent_share);
  const int persists =
      permanent ? std::numeric_limits<int>::max()
                : 1 + static_cast<int>(rng.below(2));

  // Fault parameters are drawn unconditionally too, keeping every attempt's
  // view of the schedule identical.
  const TimeMillis stall =
      visit_deadline_ms + 30'000 +
      static_cast<TimeMillis>(rng.below(90'000));
  const int crash_after_page = static_cast<int>(rng.below(3));
  const bool crash_loses_cookie = rng.chance(0.5);

  if (attempt >= persists) return out;  // fault has cleared by this attempt

  out.cls = cls;
  out.stall_ms = stall;
  out.connect_timeout_ms = params_.connect_timeout_ms;
  out.crash_after_page = crash_after_page;
  out.crash_loses_cookie_channel = crash_loses_cookie;
  out.subresource_fail_rate = params_.subresource_fail_rate;
  return out;
}

IoFaultDecision IoFaultPlan::decide(std::uint64_t op) const {
  IoFaultDecision out;
  if (!enabled_ || op < params_.min_op || op >= params_.max_op) return out;

  script::Rng rng(params_.seed ^ (kOpSalt + op * kRankMix));
  if (!rng.chance(params_.op_fault_rate)) return out;

  static constexpr IoFault kClasses[] = {
      IoFault::kNoSpace,
      IoFault::kShortWrite,
      IoFault::kFsyncLost,
      IoFault::kBitFlip,
  };
  const double weights[] = {
      params_.no_space_weight,
      params_.short_write_weight,
      params_.fsync_loss_weight,
      params_.bit_flip_weight,
  };
  double total = 0;
  for (const double w : weights) total += w > 0 ? w : 0;
  // All-zero weights degrade to the mildest class rather than silently
  // disabling the plan — mirrors FaultPlan's kSubresourceFailure fallback.
  IoFault cls = IoFault::kBitFlip;
  if (total > 0) {
    double roll = rng.uniform() * total;
    for (int i = 0; i < 4; ++i) {
      const double w = weights[i] > 0 ? weights[i] : 0;
      if (roll < w) {
        cls = kClasses[i];
        break;
      }
      roll -= w;
    }
  }

  out.cls = cls;
  out.cut = rng.uniform();
  out.flip = rng.next();
  return out;
}

IoFaultDecision IoFaultPlan::decide_crash(std::uint64_t key) const {
  IoFaultDecision out;
  if (!enabled_) return out;
  script::Rng rng(params_.seed ^ (kCrashSalt + key * kRankMix));
  out.cls = IoFault::kTornTail;
  out.cut = rng.uniform();
  out.flip = rng.next();
  return out;
}

net::TransportVerdict VisitFaults::on_request(
    const net::HttpRequest& request) {
  switch (decision_.cls) {
    case FailureClass::kConnectTimeout:
      // The site's document server is unreachable: the connect burns its
      // timeout budget on the simulated clock, then reports failure.
      if (request.destination == net::RequestDestination::kDocument &&
          request.url.host() == site_host_) {
        return {net::NetError::kConnectionTimeout,
                decision_.connect_timeout_ms};
      }
      break;
    case FailureClass::kDeadlineExceeded:
      // The document response stalls long enough to blow the visit deadline
      // — the response does arrive, but the crawler abandons the visit.
      if (request.destination == net::RequestDestination::kDocument &&
          request.url.host() == site_host_) {
        return {net::NetError::kOk, decision_.stall_ms};
      }
      break;
    case FailureClass::kSubresourceFailure:
      if (request.destination == net::RequestDestination::kScript &&
          rng_.chance(decision_.subresource_fail_rate)) {
        return {net::NetError::kConnectionReset, 0};
      }
      break;
    case FailureClass::kNone:
    case FailureClass::kDnsFailure:       // injected at resolve, not transport
    case FailureClass::kTruncatedHeaders: // acts in on_response
    case FailureClass::kExtensionCrash:   // acts in the recorder channel
    case FailureClass::kIncompleteLogs:   // diagnosis, never injected
    case FailureClass::kStorageFailure:   // archive write path, not transport
      break;
  }
  return {};
}

void VisitFaults::on_response(const net::HttpRequest& request,
                              net::HttpResponse& response) {
  if (decision_.cls != FailureClass::kTruncatedHeaders) return;
  (void)request;
  const auto set_cookies = response.headers.get_all("Set-Cookie");
  if (set_cookies.empty()) return;
  response.headers.remove("Set-Cookie");
  for (const auto& header : set_cookies) {
    // Cut the header mid-value: downstream parsing sees a corrupt cookie,
    // which is exactly what a truncated log channel looks like upstream.
    response.headers.add("Set-Cookie", header.substr(0, header.size() / 2));
  }
}

}  // namespace cg::fault
