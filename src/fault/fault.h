// Deterministic fault injection for the crawl pipeline.
//
// Real crawls lose sites: the paper retained only 14,917 of 20,000 (§4.2),
// and follow-up measurement work (Cookieverse, third-party-cookie phase-out
// studies) reports that *which* sites survive materially shapes the results.
// Instead of the seed's coin flip, the crawler consumes a FaultPlan: a
// seeded, per-site-deterministic schedule of the failure modes a Selenium
// fleet actually hits — DNS resolution failures, connection timeouts,
// stalled responses that blow the visit deadline, truncated Set-Cookie
// headers, failed script fetches, and measurement-extension crashes.
// Exclusion rates then *emerge* from the plan plus the crawler's retry
// policy rather than being hardcoded.
//
// Determinism contract: FaultPlan::decide(rank, attempt) depends only on
// (plan seed, rank, attempt) — never on crawl order, retry history of other
// sites, or wall-clock time — so checkpoint/resume and re-runs reproduce
// byte-identical outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/clock.h"
#include "net/http.h"
#include "script/rng.h"

namespace cg::fault {

/// Failure taxonomy for a site visit. Classes marked "fatal" exclude the
/// site from analysis (the paper's completeness filter); kSubresourceFailure
/// only degrades the visit — the site is retained with fewer records.
enum class FailureClass {
  kNone = 0,
  kDnsFailure,          // NXDOMAIN / CNAME loop on the site host
  kConnectTimeout,      // TCP connect to the document server timed out
  kDeadlineExceeded,    // stalled response blew the per-visit deadline
  kTruncatedHeaders,    // Set-Cookie headers truncated in flight
  kSubresourceFailure,  // script fetches failed; visit degraded, retained
  kExtensionCrash,      // measurement extension died mid-visit
  kIncompleteLogs,      // a log channel is missing with no deeper cause
  kStorageFailure,      // archive write path exhausted its I/O retry budget
};

inline constexpr int kFailureClassCount = 9;

constexpr std::string_view failure_class_name(FailureClass cls) {
  switch (cls) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kDnsFailure:
      return "dns_failure";
    case FailureClass::kConnectTimeout:
      return "connect_timeout";
    case FailureClass::kDeadlineExceeded:
      return "deadline_exceeded";
    case FailureClass::kTruncatedHeaders:
      return "truncated_headers";
    case FailureClass::kSubresourceFailure:
      return "subresource_failure";
    case FailureClass::kExtensionCrash:
      return "extension_crash";
    case FailureClass::kIncompleteLogs:
      return "incomplete_logs";
    case FailureClass::kStorageFailure:
      return "storage_failure";
  }
  return "unknown";
}

/// True when the class costs the site its place in the analysis set.
constexpr bool is_fatal(FailureClass cls) {
  return cls != FailureClass::kNone &&
         cls != FailureClass::kSubresourceFailure;
}

/// Corruption taxonomy for the CGAR archive store (src/store/). Every way a
/// reader can reject an archive maps to exactly one class — corrupt inputs
/// degrade to a diagnosable error, never a crash — and fleet dashboards can
/// aggregate rejection causes the same way CrawlHealth aggregates
/// FailureClass. Ordered roughly outermost-to-innermost validation layer.
enum class ArchiveFault {
  kNone = 0,
  kIoError,           // the underlying file could not be opened or read
  kTruncated,         // file or block shorter than its declared extent
  kBadMagic,          // header or trailer magic mismatch: not a CGAR file
  kVersionMismatch,   // unsupported or internally inconsistent format version
  kSchemaMismatch,    // record schema newer than this reader understands
  kChecksumMismatch,  // block CRC32C does not match its payload
  kCorruptIndex,      // footer index inconsistent with the block stream
  kDuplicateSite,     // two blocks claim the same site rank
  kCorruptBlock,      // payload fails structural decode (varint, string ref)
  kBaseMismatch,      // delta archive's recorded base provenance disagrees
                      // with the base archive it is being resolved against
  kDeltaUnresolved,   // delta archive visited without its base chain
};

inline constexpr int kArchiveFaultCount = 12;

constexpr std::string_view archive_fault_name(ArchiveFault fault) {
  switch (fault) {
    case ArchiveFault::kNone:
      return "none";
    case ArchiveFault::kIoError:
      return "io_error";
    case ArchiveFault::kTruncated:
      return "truncated";
    case ArchiveFault::kBadMagic:
      return "bad_magic";
    case ArchiveFault::kVersionMismatch:
      return "version_mismatch";
    case ArchiveFault::kSchemaMismatch:
      return "schema_mismatch";
    case ArchiveFault::kChecksumMismatch:
      return "checksum_mismatch";
    case ArchiveFault::kCorruptIndex:
      return "corrupt_index";
    case ArchiveFault::kDuplicateSite:
      return "duplicate_site";
    case ArchiveFault::kCorruptBlock:
      return "corrupt_block";
    case ArchiveFault::kBaseMismatch:
      return "base_mismatch";
    case ArchiveFault::kDeltaUnresolved:
      return "delta_unresolved";
  }
  return "unknown";
}

/// Write-side I/O fault taxonomy (the mirror of ArchiveFault for the write
/// path). Every way a store::ByteSink operation can fail — for real or by
/// injection — maps to exactly one class, so the error-budget metrics
/// (io.injected.*, io.faults.*) account for every fault a chaos run plants.
enum class IoFault {
  kNone = 0,
  kStreamError,  // the underlying stream/file failed (a real error)
  kNoSpace,      // ENOSPC: the write consumed no bytes at all
  kShortWrite,   // only a prefix of the buffer reached the file
  kFsyncLost,    // fsync failed and unsynced bytes were dropped (fsyncgate)
  kTornTail,     // a crash tore the file mid-block
  kBitFlip,      // a bit flipped between the buffer and the medium (silent)
};

inline constexpr int kIoFaultCount = 7;

constexpr std::string_view io_fault_name(IoFault fault) {
  switch (fault) {
    case IoFault::kNone:
      return "none";
    case IoFault::kStreamError:
      return "stream_error";
    case IoFault::kNoSpace:
      return "no_space";
    case IoFault::kShortWrite:
      return "short_write";
    case IoFault::kFsyncLost:
      return "fsync_lost";
    case IoFault::kTornTail:
      return "torn_tail";
    case IoFault::kBitFlip:
      return "bit_flip";
  }
  return "unknown";
}

/// Knobs of a write-side fault schedule. Unlike FaultPlanParams there is no
/// permanence model: every sink operation is an independent per-op draw, and
/// "permanent" storage trouble is modeled with a [min_op, max_op) window at
/// fault_rate 1.0 (tests) — the retry loop exhausts its budget inside the
/// window and the affected site is quarantined.
struct IoFaultPlanParams {
  std::uint64_t seed = 0x10FA17C4A05ULL;
  /// P(any given sink operation faults).
  double op_fault_rate = 0.05;
  /// Ops with index < min_op never fault (op 0 is the archive header —
  /// keeping it clean by default means injected damage is always
  /// recoverable tail damage, not an unusable file).
  std::uint64_t min_op = 1;
  /// Ops with index >= max_op never fault (window end, exclusive).
  std::uint64_t max_op = ~std::uint64_t{0};
  /// Relative class weights (normalised internally). kFsyncLost only
  /// applies to sync() ops and the others only to write() ops — the sink
  /// filters by op kind, so the realized class mix also depends on the
  /// write/sync ratio of the workload.
  double no_space_weight = 0.30;
  double short_write_weight = 0.30;
  double fsync_loss_weight = 0.20;
  double bit_flip_weight = 0.20;
};

/// The fault (if any) scheduled for one sink operation, with its parameters
/// pre-drawn: where a short write / sync loss cuts, which bit flips.
struct IoFaultDecision {
  IoFault cls = IoFault::kNone;
  /// Fraction in [0,1): how much of the affected range survives — a short
  /// write keeps floor(cut * len) bytes, a lost sync keeps that fraction of
  /// the unsynced tail, a torn tail that fraction of the torn block.
  double cut = 0;
  /// kBitFlip / kTornTail: determinant for which bit flips (mod range).
  std::uint64_t flip = 0;

  bool active() const { return cls != IoFault::kNone; }
};

/// A seeded, per-operation-deterministic schedule of injectable storage
/// faults. decide(op) is a pure function of (seed, op): since the writer's
/// sink is only ever driven from the merge thread in site-index order, the
/// op sequence — and therefore the whole fault schedule — is byte-identical
/// at any crawl thread count.
class IoFaultPlan {
 public:
  /// Default-constructed plans are disabled: decide() never faults.
  IoFaultPlan() = default;
  explicit IoFaultPlan(IoFaultPlanParams params)
      : params_(params), enabled_(true) {}

  bool enabled() const { return enabled_; }
  const IoFaultPlanParams& params() const { return params_; }

  /// The fault (if any) for the `op`-th sink operation.
  IoFaultDecision decide(std::uint64_t op) const;

  /// Deterministic crash corruption keyed off `key` (chaos harness: which
  /// torn-tail/bit-flip artifact a simulated crash leaves behind). Always
  /// active when the plan is enabled, independent of op_fault_rate.
  IoFaultDecision decide_crash(std::uint64_t key) const;

 private:
  IoFaultPlanParams params_;
  bool enabled_ = false;
};

/// Knobs of the fault schedule. The defaults are calibrated so that, with
/// the crawler's default retry budget (2 retries), the retained fraction
/// lands on the paper's 14,917/20,000 ≈ 74.6%:
///   exclusion ≈ site_fault_rate × fatal-class share × permanent_share
///             ≈ 0.40 × 0.75 × 0.85 ≈ 25.5%.
struct FaultPlanParams {
  std::uint64_t seed = 0xFA177C00C1EULL;
  /// P(a site draws any fault at all).
  double site_fault_rate = 0.40;
  /// P(the drawn fault persists across every retry). Transient faults clear
  /// after one or two failed attempts, so retries recover them.
  double permanent_share = 0.85;
  /// Relative class weights (normalised internally).
  double dns_weight = 0.18;
  double connect_weight = 0.17;
  double stall_weight = 0.15;
  double truncate_weight = 0.15;
  double crash_weight = 0.10;
  double subresource_weight = 0.25;
  /// Simulated time burned by a connect timeout before it reports failure.
  TimeMillis connect_timeout_ms = 30'000;
  /// Once a subresource fault is active, P(any individual script fetch
  /// fails).
  double subresource_fail_rate = 0.5;
};

/// The fault scheduled for one (site, attempt) pair, with all parameters
/// pre-drawn so every attempt of a site sees a consistent schedule.
struct FaultDecision {
  FailureClass cls = FailureClass::kNone;
  /// kDeadlineExceeded: extra latency injected on the document fetch;
  /// always exceeds the visit deadline it was drawn against.
  TimeMillis stall_ms = 0;
  /// kConnectTimeout: simulated time until the connect gives up.
  TimeMillis connect_timeout_ms = 0;
  /// kExtensionCrash: index of the last page the recorder survives
  /// (0 = only the landing page is recorded).
  int crash_after_page = 0;
  /// kExtensionCrash: which buffered log channel the crash destroys.
  bool crash_loses_cookie_channel = false;
  /// kSubresourceFailure: per-script-fetch failure probability.
  double subresource_fail_rate = 0;

  bool active() const { return cls != FailureClass::kNone; }
};

/// A seeded, per-site-deterministic schedule of injectable faults.
class FaultPlan {
 public:
  /// Default-constructed plans are disabled: decide() never faults.
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanParams params)
      : params_(params), enabled_(true) {}

  bool enabled() const { return enabled_; }
  const FaultPlanParams& params() const { return params_; }

  /// The fault (if any) for attempt `attempt` (0-based) of site `rank`.
  /// Pure function of (seed, rank, attempt, deadline): safe to call in any
  /// order, from any attempt, any number of times.
  FaultDecision decide(int rank, int attempt,
                       TimeMillis visit_deadline_ms) const;

 private:
  FaultPlanParams params_;
  bool enabled_ = false;
};

/// Per-attempt fault behaviours, wired by the crawler into the browser's
/// network layer (fault/response hooks) and DNS resolver. Stateful only in
/// its private RNG (per-script-fetch failure draws), which is seeded
/// deterministically per attempt.
class VisitFaults {
 public:
  VisitFaults(FaultDecision decision, std::string site_host,
              std::uint64_t rng_seed)
      : decision_(decision),
        site_host_(std::move(site_host)),
        rng_(rng_seed) {}

  const FaultDecision& decision() const { return decision_; }

  /// True when the site host must fail DNS resolution this attempt.
  bool dns_fails() const {
    return decision_.cls == FailureClass::kDnsFailure;
  }

  /// Transport verdict for an outgoing request (NetworkLayer fault hook):
  /// connect timeouts and stalls hit the site's document requests; script
  /// fetch failures are drawn per request.
  net::TransportVerdict on_request(const net::HttpRequest& request);

  /// Response mutation (NetworkLayer response hook): truncates Set-Cookie
  /// headers mid-value when the truncation fault is active.
  void on_response(const net::HttpRequest& request,
                   net::HttpResponse& response);

 private:
  FaultDecision decision_;
  std::string site_host_;
  script::Rng rng_;
};

}  // namespace cg::fault
