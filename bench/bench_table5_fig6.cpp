// Reproduces Table 5 and Figure 6 (cross-domain manipulation) plus the §5.5
// overwrite attribute breakdown:
//   * Table 5: most frequently overwritten/deleted cookie pairs with their
//     top manipulator entities (_fbp leads overwriting; consent managers
//     lead deletion),
//   * Figure 6: top-20 overwriter and deleter script domains
//     (googletagmanager.com #1 overwriter; consent managers and first-party
//     cleanup scripts lead deletion),
//   * §5.5: 85.3% of overwrites change the value, 69.4% the expiry, 6.0%
//     the domain, 1.2% the path.
#include "bench_util.h"

namespace {

std::string top3(const std::map<std::string, int>& counts) {
  std::string out;
  for (const auto& [entity, n] : cg::analysis::top_counts(counts, 3)) {
    if (!out.empty()) out += ", ";
    out += entity;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "Table 5 / Figure 6 — cross-domain overwriting and deletion", corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));
  const auto& t = analyzer.totals();

  std::printf("\n-- §5.5 attributes changed by cross-domain overwrites --\n");
  const double overwrites = std::max(1LL, t.cross_overwrites);
  bench::print_row("value changed", 85.3,
                   100.0 * t.overwrite_value_changed / overwrites);
  bench::print_row("expires changed", 69.4,
                   100.0 * t.overwrite_expires_changed / overwrites);
  bench::print_row("domain changed", 6.0,
                   100.0 * t.overwrite_domain_changed / overwrites);
  bench::print_row("path changed", 1.2,
                   100.0 * t.overwrite_path_changed / overwrites);
  std::printf("  lifespan: %lld overwrites pushed the expiry later "
              "(avg +%.0f days), %lld pulled it\n  earlier -- 'extending "
              "tracking durations beyond the original intent' (s5.5)\n",
              t.overwrite_expiry_extended,
              t.overwrite_expiry_extended > 0
                  ? t.expiry_days_added / t.overwrite_expiry_extended
                  : 0.0,
              t.overwrite_expiry_shortened);

  std::printf("\n-- Table 5a: most frequently overwritten cookie pairs --\n");
  std::printf("  %-22s %-24s %8s  %s\n", "cookie", "creator domain",
              "#manip", "top manipulator entities");
  for (const auto& row : analyzer.top_overwritten(10)) {
    std::printf("  %-22s %-24s %8zu  %s\n", row.pair.name.c_str(),
                row.pair.owner_domain.c_str(),
                row.stats->overwriter_entities.size(),
                top3(row.stats->overwriter_entities).c_str());
  }
  std::printf("  paper: _fbp (facebook.net) leads with 132 manipulator "
              "entities\n");

  std::printf("\n-- Table 5b: most frequently deleted cookie pairs --\n");
  std::printf("  %-22s %-24s %8s  %s\n", "cookie", "creator domain",
              "#manip", "top manipulator entities");
  for (const auto& row : analyzer.top_deleted(10)) {
    std::printf("  %-22s %-24s %8zu  %s\n", row.pair.name.c_str(),
                row.pair.owner_domain.c_str(),
                row.stats->deleter_entities.size(),
                top3(row.stats->deleter_entities).c_str());
  }
  std::printf("  paper: _uetvid/_uetsid (bing.com) lead; consent managers "
              "(Tealium, cookie-script,\n  cdn-cookieyes) dominate the "
              "deleter side\n");

  std::printf("\n-- Figure 6a: top overwriter script domains --\n");
  for (const auto& [domain, count] : analyzer.top_overwriter_domains(20)) {
    std::printf("  %-30s %6d unique cookies\n", domain.c_str(), count);
  }
  std::printf("  paper: googletagmanager.com #1 (386 of 82k cookies)\n");

  std::printf("\n-- Figure 6b: top deleter script domains --\n");
  for (const auto& [domain, count] : analyzer.top_deleter_domains(20)) {
    std::printf("  %-30s %6d unique cookies\n", domain.c_str(), count);
  }
  std::printf("  paper: prettylittlething.com (a first-party cleanup script) "
              "#1 (252 cookies);\n  consent managers follow\n\n");
  return 0;
}
