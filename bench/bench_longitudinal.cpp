// bench_longitudinal: the longitudinal-wave experiment — seeded corpus
// evolution packed as a base archive plus per-wave deltas.
//
// Packs wave 0 as a full CGAR archive, then each later wave as a delta
// archive against the chain so far (exactly what `cgsim pack --base` does,
// in memory), and for every wave also packs an independent full archive of
// the same evolved corpus. Three gates, each a hard failure:
//
//   1. Compression: a wave's delta archive is at most kMaxDeltaRatio of
//      the same wave's full archive at the default churn rates — the
//      point of storing waves as deltas.
//   2. Equivalence: analyzing wave w through the base+delta chain
//      (WaveChain materialization) produces byte-identical Table 1 /
//      totals / top-N JSON to analyzing the independently packed full
//      archive of wave w.
//   3. Determinism: the delta archive packed at N threads is
//      byte-identical to the 1-thread pack.
//
// CG_SITES scales the corpus (default 2000 here, not the paper's 20000 —
// every wave is crawled twice, once for the delta and once for the full
// reference). CG_WAVES sets the chain length (default 3: one base + two
// deltas).
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/archive.h"
#include "bench_util.h"
#include "entities/entity_map.h"
#include "evolve/wave_corpus.h"
#include "report/report.h"
#include "store/chain.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using namespace cg;

constexpr double kMaxDeltaRatio = 0.25;

int waves_from_env(int fallback = 3) {
  if (const char* env = std::getenv("CG_WAVES")) {
    return bench::require_int(env, "CG_WAVES", 2, 64);
  }
  return fallback;
}

/// Crawls `view` into an in-memory archive. `base` non-null packs a delta
/// archive against the chain's newest wave.
std::string pack_wave(const corpus::CorpusView& view, int threads,
                      const store::WaveChain* base,
                      store::WriterOptions writer_options) {
  std::ostringstream out(std::ios::binary);
  store::Writer writer(&out, writer_options);
  crawler::Crawler crawler(view);
  crawler::CrawlOptions options;
  options.threads = threads;
  options.archive = &writer;
  options.delta_base = base;
  crawler.crawl(view.size(), options, [](instrument::VisitLog&&) {});
  store::Error error;
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "error: pack failed (%s)\n",
                 error.to_string().c_str());
    std::exit(1);
  }
  return std::move(out).str();
}

store::Reader open_buffer(std::string bytes) {
  store::Error error;
  auto reader = store::Reader::from_buffer(std::move(bytes), &error);
  if (!reader) {
    std::fprintf(stderr, "error: packed archive rejected (%s)\n",
                 error.to_string().c_str());
    std::exit(1);
  }
  return std::move(*reader);
}

/// The full analysis rendering of one wave — the byte string gate 2
/// compares.
std::string analysis_fingerprint(analysis::Analyzer& analyzer) {
  return report::summary_to_json(analyzer, 20).dump();
}

}  // namespace

int main(int argc, char** argv) {
  corpus::CorpusParams params;
  params.site_count = bench::corpus_sites_from_env(2000);
  const int threads = bench::threads_from_args(argc, argv);
  const int waves = waves_from_env();
  const evolve::EvolutionParams evolution;  // default churn rates

  std::printf("================================================================\n");
  std::printf("Longitudinal waves: delta archives vs full packs\n");
  std::printf("corpus: %d sites, seed 0x%llX; %d waves, evolution seed "
              "0x%llX, %d crawl thread%s\n",
              params.site_count,
              static_cast<unsigned long long>(params.seed), waves,
              static_cast<unsigned long long>(evolution.seed), threads,
              threads == 1 ? "" : "s");
  std::printf("================================================================\n");

  // Shared provenance for every wave of the chain.
  store::WriterOptions base_options;
  base_options.corpus_seed = params.seed;
  {
    corpus::Corpus probe(corpus::CorpusParams{});
    crawler::Crawler crawler(probe);
    const fault::FaultPlan plan = crawler.plan_for(crawler::CrawlOptions{});
    base_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  }
  base_options.evolution_seed = evolution.seed;

  // Readers are heap-held so WaveChain's borrowed pointers stay stable as
  // the chain grows.
  std::vector<std::unique_ptr<store::Reader>> chain_readers;
  bool all_ok = true;

  for (int wave = 0; wave < waves; ++wave) {
    const evolve::WaveCorpus view(params, evolution, wave);

    // Independent full pack of this wave — the size baseline and the
    // equivalence reference.
    store::WriterOptions full_options = base_options;
    full_options.wave = static_cast<std::uint32_t>(wave);
    std::string full_bytes = pack_wave(view, threads, nullptr, full_options);
    const std::uint64_t full_size = full_bytes.size();

    if (wave == 0) {
      chain_readers.push_back(
          std::make_unique<store::Reader>(open_buffer(std::move(full_bytes))));
      std::printf("  wave 0: full archive %8llu bytes (chain base)\n",
                  static_cast<unsigned long long>(full_size));
      continue;
    }

    // Delta pack against the chain so far.
    std::vector<const store::Reader*> links;
    for (const auto& reader : chain_readers) links.push_back(reader.get());
    store::Error error;
    auto chain = store::WaveChain::link(links, &error);
    if (!chain) {
      std::fprintf(stderr, "error: chain link failed at wave %d (%s)\n",
                   wave, error.to_string().c_str());
      return 1;
    }
    const store::Reader& tail = chain->archive(chain->waves() - 1);
    store::WriterOptions delta_options = base_options;
    delta_options.kind = store::ArchiveKind::kDelta;
    delta_options.wave = static_cast<std::uint32_t>(wave);
    delta_options.base.corpus_seed = tail.corpus_seed();
    delta_options.base.fault_seed = tail.fault_seed();
    delta_options.base.evolution_seed = tail.evolution_seed();
    delta_options.base.policy = tail.policy();
    delta_options.base.wave = tail.wave();
    delta_options.base.site_count =
        static_cast<std::uint32_t>(tail.total_site_count());
    delta_options.base.footer_crc = tail.footer_crc();

    std::string delta_bytes =
        pack_wave(view, threads, &*chain, delta_options);
    const std::uint64_t delta_size = delta_bytes.size();
    const double ratio =
        full_size > 0 ? static_cast<double>(delta_size) / full_size : 0.0;

    // Gate 3: N-thread pack == 1-thread pack, byte for byte.
    bool thread_identical = true;
    if (threads != 1) {
      thread_identical =
          pack_wave(view, 1, &*chain, delta_options) == delta_bytes;
    } else {
      thread_identical =
          pack_wave(view, 2, &*chain, delta_options) == delta_bytes;
    }

    auto delta_reader =
        std::make_unique<store::Reader>(open_buffer(std::move(delta_bytes)));
    const int inherited =
        static_cast<int>(delta_reader->inherited_ranks().size());
    const int blocks = delta_reader->site_count();
    chain_readers.push_back(std::move(delta_reader));

    // Gate 2: chain materialization reproduces the full archive's analysis.
    links.push_back(chain_readers.back().get());
    chain = store::WaveChain::link(links, &error);
    if (!chain) {
      std::fprintf(stderr, "error: chain re-link failed at wave %d (%s)\n",
                   wave, error.to_string().c_str());
      return 1;
    }
    analysis::Analyzer chain_analyzer(entities::EntityMap::builtin());
    if (!analysis::analyze_wave(*chain, chain->waves() - 1, chain_analyzer,
                                &error)) {
      std::fprintf(stderr, "error: chain analysis failed at wave %d (%s)\n",
                   wave, error.to_string().c_str());
      return 1;
    }
    const store::Reader full_reader = open_buffer(
        pack_wave(view, threads, nullptr, full_options));
    analysis::Analyzer full_analyzer(entities::EntityMap::builtin());
    if (!analysis::analyze_archive(full_reader, full_analyzer, &error)) {
      std::fprintf(stderr, "error: full-archive analysis failed at wave %d "
                   "(%s)\n", wave, error.to_string().c_str());
      return 1;
    }
    const bool equivalent = analysis_fingerprint(chain_analyzer) ==
                            analysis_fingerprint(full_analyzer);
    const bool compact = ratio <= kMaxDeltaRatio;

    std::printf(
        "  wave %d: delta %8llu bytes vs full %8llu (%5.1f%%), "
        "%d delta blocks + %d inherited — %s%s%s\n",
        wave, static_cast<unsigned long long>(delta_size),
        static_cast<unsigned long long>(full_size), 100.0 * ratio, blocks,
        inherited, compact ? "compact" : "TOO LARGE",
        equivalent ? ", equivalent" : ", ANALYSIS MISMATCH",
        thread_identical ? ", thread-identical" : ", THREAD DIVERGENCE");
    all_ok = all_ok && compact && equivalent && thread_identical;
  }

  if (!all_ok) {
    std::printf("FAIL: a wave violated the delta-size, equivalence, or "
                "determinism gate\n");
    return 1;
  }
  std::printf("all gates passed: delta <= %.0f%% of full, chain analysis "
              "byte-identical to full packs, thread-identical deltas\n",
              100.0 * kMaxDeltaRatio);
  return 0;
}
