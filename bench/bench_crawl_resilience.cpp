// Crawl-pipeline resilience benchmark: throughput cost and health of the
// fault-injection + retry layer.
//
// Crawls the corpus twice — faults disabled, then the default fault plan —
// and reports visits/sec for both, the retry overhead (extra attempts per
// site), and the emergent exclusion rate against the paper's 25.4%
// (5,083 of 20,000 sites lacked a complete log pair, §4.2).
//
// The final line is machine-readable: `BENCH {...}` JSON for the perf
// trajectory tracker.
#include <chrono>

#include "bench_util.h"
#include "report/json.h"

namespace {

struct TimedCrawl {
  cg::crawler::CrawlHealth health;
  double seconds = 0;
  double visits_per_sec = 0;
};

TimedCrawl run(const cg::corpus::Corpus& corpus, bool faults, int threads) {
  cg::crawler::Crawler crawler(corpus);
  cg::crawler::CrawlOptions options;
  if (!faults) options.fault_plan.reset();
  options.threads = threads;

  TimedCrawl out;
  const auto start = std::chrono::steady_clock::now();
  out.health = crawler.crawl(corpus.size(), options,
                             [](cg::instrument::VisitLog&&) {});
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  // Throughput counts attempts the pipeline executed, visits delivered.
  out.visits_per_sec =
      out.seconds > 0 ? out.health.sites_attempted / out.seconds : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("Crawl resilience — fault injection + retry overhead",
                      corpus, threads);

  const TimedCrawl clean = run(corpus, /*faults=*/false, threads);
  const TimedCrawl faulty = run(corpus, /*faults=*/true, threads);

  const auto& health = faulty.health;
  const double retry_overhead =
      health.sites_attempted > 0
          ? static_cast<double>(health.total_attempts) / health.sites_attempted
          : 1.0;

  std::printf("\n  %-34s %10.1f visits/sec (%.2fs)\n", "faults off",
              clean.visits_per_sec, clean.seconds);
  std::printf("  %-34s %10.1f visits/sec (%.2fs)\n", "faults on",
              faulty.visits_per_sec, faulty.seconds);
  std::printf("  %-34s %10.2f attempts/site\n", "retry overhead",
              retry_overhead);
  std::printf("  %-34s %10d of %d\n", "sites recovered by retries",
              health.sites_recovered,
              health.sites_recovered + health.sites_excluded);
  bench::print_row("excluded (no complete log pair)", 25.4,
                   100.0 * health.exclusion_rate());

  std::printf("\n  exclusions by failure class:\n");
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    if (health.exclusions[c] == 0) continue;
    std::printf("    %-22s %6d\n",
                std::string(fault::failure_class_name(
                                static_cast<fault::FailureClass>(c)))
                    .c_str(),
                health.exclusions[c]);
  }

  auto json = report::Json::object();
  json["bench"] = "crawl_resilience";
  json["sites"] = corpus.size();
  json["threads"] = threads;
  json["visits_per_sec_faults_off"] = clean.visits_per_sec;
  json["visits_per_sec_faults_on"] = faulty.visits_per_sec;
  json["retry_overhead_attempts_per_site"] = retry_overhead;
  json["exclusion_rate"] = health.exclusion_rate();
  json["recovery_rate"] = health.recovery_rate();
  json["sites_retained"] = health.sites_retained;
  json["sites_degraded"] = health.sites_degraded;
  std::printf("\nBENCH %s\n", json.dump().c_str());
  return 0;
}
