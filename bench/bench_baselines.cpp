// Baseline-defense comparison (paper §2.1): third-party cookie blocking,
// storage partitioning, and filter-list content blocking versus CookieGuard,
// all on the same corpus.
//
// Expected shape: the first two leave main-frame cross-domain actions
// untouched (they isolate *sites*, not *scripts*); the filter list removes
// listed vendors (and their functionality) but misses the long tail,
// CNAME-cloaked scripts, and first-party proxies; CookieGuard cuts all
// three action classes by >80% while keeping vendors running.
#include "baselines/baselines.h"
#include "cookieguard/cookieguard.h"

#include "bench_util.h"

namespace {

using namespace cg;

struct Row {
  const char* label;
  double exfil, overwrite, del;
  double tp_scripts;
};

// The defenses are stateful shared instances whose counters are printed
// after the crawl, so this bench stays single-threaded (a shared extension
// pins run_measurement_crawl to one worker anyway).
Row run(const corpus::Corpus& corpus, const char* label,
        browser::Extension* defense) {
  analysis::Analyzer analyzer(corpus.entities());
  cg::bench::run_measurement_crawl(corpus, analyzer, defense,
                                   /*with_faults=*/false);
  const auto& t = analyzer.totals();
  const double n = t.sites_complete;
  return {label, 100.0 * t.sites_doc_exfil / n,
          100.0 * t.sites_doc_overwrite / n, 100.0 * t.sites_doc_delete / n,
          double(t.third_party_script_count) / t.sites_crawled};
}

}  // namespace

int main() {
  corpus::Corpus corpus(cg::bench::default_params());
  cg::bench::print_header(
      "§2.1 baselines — existing defenses vs CookieGuard", corpus);

  baselines::ThirdPartyCookieBlocking third_party;
  baselines::StoragePartitioning partitioning;
  baselines::FilterListBlocker filter_list;
  cookieguard::CookieGuard guard;

  const Row rows[] = {
      run(corpus, "no defense", nullptr),
      run(corpus, "3rd-party cookie blocking", &third_party),
      run(corpus, "storage partitioning", &partitioning),
      run(corpus, "filter-list blocker", &filter_list),
      run(corpus, "CookieGuard", &guard),
  };

  std::printf("\n  %-28s | exfil%% | overwrite%% | delete%% | TP scripts/site\n",
              "defense");
  std::printf("  %s\n", std::string(76, '-').c_str());
  for (const auto& row : rows) {
    std::printf("  %-28s | %6.1f | %10.1f | %7.1f | %8.1f\n", row.label,
                row.exfil, row.overwrite, row.del, row.tp_scripts);
  }

  std::printf("\n  filter list blocked %llu script inclusions and %llu "
              "requests (functionality cost);\n  cross-site Set-Cookie "
              "headers the 3p-blocker saw: %llu (already inert in a 2025 "
              "browser).\n\n",
              static_cast<unsigned long long>(
                  filter_list.stats().scripts_blocked),
              static_cast<unsigned long long>(
                  filter_list.stats().requests_blocked),
              static_cast<unsigned long long>(
                  third_party.cross_site_headers_seen()));
  return 0;
}
