// Parallel crawl scaling: sites/sec and speedup of the sharded runner at
// 1/2/4/8 worker threads, plus a byte-identity check of every N-thread
// analysis summary against the 1-thread summary.
//
// The crawl is embarrassingly parallel — each site's RNG seed, virtual
// clock, and fault schedule derive from its index alone — and the sharded
// runner merges results on the calling thread in site-index order, so any
// thread count must produce byte-identical output. Speedup is bounded by
// the machine: on a single-core container every row measures ~1x while the
// identity check still exercises the full sharded path.
//
// The final line is machine-readable: `BENCH {...}` JSON for the perf
// trajectory tracker.
#include <chrono>
#include <string>

#include "bench_util.h"
#include "report/report.h"
#include "runtime/thread_pool.h"

int main() {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  bench::print_header("Parallel crawl scaling — sharded runner", corpus,
                      runtime::ThreadPool::hardware_threads());
  std::printf("\n  hardware threads: %d\n\n",
              runtime::ThreadPool::hardware_threads());
  std::printf("  %7s | %10s | %8s | %s\n", "threads", "sites/sec", "speedup",
              "summary vs 1 thread");
  std::printf("  %s\n", std::string(60, '-').c_str());

  std::string baseline_summary;
  double baseline_seconds = 0;
  bool all_identical = true;
  double speedup4 = 0;

  for (const int threads : {1, 2, 4, 8}) {
    crawler::Crawler crawler(corpus);
    analysis::Analyzer analyzer(corpus.entities());
    crawler::CrawlOptions options;
    options.threads = threads;

    const auto start = std::chrono::steady_clock::now();
    const auto health =
        crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
          analyzer.ingest(log);
        });
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const double sites_per_sec =
        seconds > 0 ? health.sites_attempted / seconds : 0;

    const std::string summary = report::summary_to_json(analyzer, 20).dump(2);
    if (threads == 1) {
      baseline_summary = summary;
      baseline_seconds = seconds;
    }
    const bool identical = summary == baseline_summary;
    all_identical = all_identical && identical;
    const double speedup = seconds > 0 ? baseline_seconds / seconds : 0;
    if (threads == 4) speedup4 = speedup;

    std::printf("  %7d | %10.1f | %7.2fx | %s\n", threads, sites_per_sec,
                speedup, identical ? "byte-identical" : "MISMATCH");
  }

  auto json = report::Json::object();
  json["bench"] = "parallel_scaling";
  json["sites"] = corpus.size();
  json["hardware_threads"] = runtime::ThreadPool::hardware_threads();
  json["baseline_seconds"] = baseline_seconds;
  json["speedup_4_threads"] = speedup4;
  json["byte_identical"] = all_identical;
  std::printf("\nBENCH %s\n", json.dump().c_str());
  return all_identical ? 0 : 1;
}
