// Storage-chaos soak: crawl → pack → crash → resume → verify → analyze
// under seeded write-side fault plans (fault::IoFaultPlan), asserting the
// robustness contract end to end:
//
//   1. A pack run under injected ENOSPC / short writes / fsync loss / bit
//      flips self-heals to an archive byte-identical to the fault-free one.
//   2. A crash after a checkpoint (torn tail + bit-flipped fragment) resumes
//      to the byte-identical archive.
//   3. The recovered archive verifies clean and reproduces the fault-free
//      run's Table 1 summary exactly.
//   4. The error-budget ledger balances: every injected fault is accounted
//      by the healer (io.injected.* == io.faults.*, bit flips == scrubs)
//      and no site was lost to storage (zero kStorageFailure exclusions).
//
// CG_SITES=<n> scales the corpus (default 400 here — a soak, not a crawl);
// CG_CHAOS_SEEDS=<n> sets how many fault plans to sweep (default 20).
// Prints one PASS/FAIL row per seed and exits non-zero on any failure, so
// CI can run it as a smoke job.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "report/report.h"
#include "store/byte_sink.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using namespace cg;

constexpr int kCheckpointInterval = 50;
constexpr int kTableTopN = 10;
constexpr std::uint64_t kSeedStride = 0x9E3779B97F4A7C15ULL;  // golden ratio

int chaos_seeds_from_env() {
  if (const char* env = std::getenv("CG_CHAOS_SEEDS")) {
    return bench::require_int(env, "CG_CHAOS_SEEDS", 1, 10'000);
  }
  return 20;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// The Table 1 summary JSON for an archive held in `bytes` — the output
/// whose invariance under chaos the soak asserts.
bool table1_from_archive(const corpus::Corpus& corpus, std::string bytes,
                         std::string* out) {
  store::Error error;
  auto reader = store::Reader::from_buffer(std::move(bytes), &error);
  if (!reader) {
    std::fprintf(stderr, "  archive rejected: %s\n", error.to_string().c_str());
    return false;
  }
  if (!reader->verify(&error).has_value()) {
    std::fprintf(stderr, "  archive corrupt: %s\n", error.to_string().c_str());
    return false;
  }
  analysis::Analyzer analyzer(corpus.entities());
  if (!analysis::analyze_archive(*reader, analyzer, &error)) {
    std::fprintf(stderr, "  replay failed: %s\n", error.to_string().c_str());
    return false;
  }
  *out = report::summary_to_json(analyzer, kTableTopN).dump();
  return true;
}

struct Reference {
  std::string archive;                               // finished bytes
  std::string table1;                                // summary JSON
  std::vector<crawler::CrawlCheckpoint> checkpoints; // with archive refs
  store::WriterOptions writer_options;               // provenance seeds
};

crawler::CrawlOptions crawl_options(store::Writer* writer,
                                    std::vector<crawler::CrawlCheckpoint>*
                                        checkpoints) {
  crawler::CrawlOptions options;
  options.archive = writer;
  options.checkpoint_interval = kCheckpointInterval;
  if (checkpoints != nullptr) {
    options.on_checkpoint = [checkpoints](
                                const crawler::CrawlCheckpoint& checkpoint) {
      checkpoints->push_back(checkpoint);
    };
  }
  return options;
}

/// Fault-free crawl+pack: the byte and Table 1 ground truth.
bool build_reference(const corpus::Corpus& corpus, Reference* reference) {
  crawler::Crawler crawler(corpus);
  reference->writer_options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(crawler::CrawlOptions{});
  reference->writer_options.fault_seed =
      plan.enabled() ? plan.params().seed : 0;

  auto sink = std::make_unique<store::BufferSink>();
  store::BufferSink* buffer = sink.get();
  store::Writer writer(std::move(sink), reference->writer_options);
  const auto options = crawl_options(&writer, &reference->checkpoints);
  crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {});
  store::Error error;
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "reference pack failed: %s\n",
                 error.to_string().c_str());
    return false;
  }
  reference->archive = buffer->bytes();
  return table1_from_archive(corpus, reference->archive, &reference->table1);
}

/// One seed's ledger check: every injected fault accounted by the healer.
bool ledger_balances(const store::FaultingSink& injector,
                     const obs::MetricsRegistry& metrics) {
  bool ok = true;
  for (const auto cls :
       {fault::IoFault::kNoSpace, fault::IoFault::kShortWrite,
        fault::IoFault::kFsyncLost}) {
    const auto injected = injector.injected(cls);
    const auto healed = metrics.counter(
        std::string("io.faults.") + std::string(fault::io_fault_name(cls)));
    if (injected != healed) {
      std::fprintf(stderr,
                   "  ledger imbalance: injected %" PRId64 " %s, healer saw "
                   "%" PRId64 "\n",
                   injected, std::string(fault::io_fault_name(cls)).c_str(),
                   healed);
      ok = false;
    }
  }
  const auto flips = injector.injected(fault::IoFault::kBitFlip);
  const auto scrubbed = metrics.counter("io.scrub_detected");
  if (flips != scrubbed) {
    std::fprintf(stderr,
                 "  ledger imbalance: injected %" PRId64 " bit flips, scrub "
                 "caught %" PRId64 "\n",
                 flips, scrubbed);
    ok = false;
  }
  return ok;
}

/// Phase 1: the full crawl+pack under an active fault plan must self-heal
/// to the reference bytes with a balanced ledger and zero quarantined sites.
bool run_faulty_pack(const corpus::Corpus& corpus, const Reference& reference,
                     const fault::IoFaultPlan& plan,
                     const std::filesystem::path& path,
                     std::int64_t* faults_injected) {
  store::IoStatus status;
  auto file = store::FileSink::open(path.string(), /*append=*/false, &status);
  if (file == nullptr) {
    std::fprintf(stderr, "  cannot open %s: %s\n", path.c_str(),
                 status.to_string().c_str());
    return false;
  }
  obs::MetricsRegistry metrics;
  auto faulting = std::make_unique<store::FaultingSink>(std::move(file), plan,
                                                        &metrics);
  store::FaultingSink* injector = faulting.get();

  store::WriterOptions writer_options = reference.writer_options;
  writer_options.io.scrub_writes = true;
  writer_options.io.buffer_unsynced = true;
  writer_options.metrics = &metrics;
  store::Writer writer(std::move(faulting), writer_options);

  crawler::Crawler crawler(corpus);
  auto options = crawl_options(&writer, nullptr);
  options.metrics = &metrics;
  const auto health =
      crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {});

  store::Error error;
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "  faulty pack did not finish: %s\n",
                 error.to_string().c_str());
    return false;
  }
  bool ok = true;
  if (read_file(path) != reference.archive) {
    std::fprintf(stderr, "  faulty pack bytes differ from reference\n");
    ok = false;
  }
  const int quarantined = health.exclusions[static_cast<std::size_t>(
      fault::FailureClass::kStorageFailure)];
  if (quarantined != 0) {
    std::fprintf(stderr, "  %d sites lost to storage (expected 0)\n",
                 quarantined);
    ok = false;
  }
  if (!ledger_balances(*injector, metrics)) ok = false;
  for (int cls = 0; cls < fault::kIoFaultCount; ++cls) {
    *faults_injected += injector->injected(static_cast<fault::IoFault>(cls));
  }
  return ok;
}

/// Phase 2: crash after a mid-crawl checkpoint — the file holds the synced
/// prefix plus a torn, bit-flipped fragment of the next block — then resume
/// through a *still-faulting* sink to the byte-identical archive.
bool run_crash_resume(const corpus::Corpus& corpus, const Reference& reference,
                      const fault::IoFaultPlan& plan, std::uint64_t seed_index,
                      const std::filesystem::path& path) {
  const auto& checkpoint =
      reference.checkpoints[reference.checkpoints.size() / 2];
  if (checkpoint.archive_sites < 0) {
    std::fprintf(stderr, "  checkpoint carries no archive segment\n");
    return false;
  }
  const auto prefix_bytes =
      static_cast<std::size_t>(checkpoint.archive_bytes);

  // The crash artifact: decide_crash picks how much of the next block's
  // bytes the torn tail keeps and which of its bits rotted.
  const auto crash = plan.decide_crash(seed_index);
  std::string file_bytes = reference.archive.substr(0, prefix_bytes);
  const std::size_t remaining = reference.archive.size() - prefix_bytes;
  const auto torn_len = static_cast<std::size_t>(
      crash.cut * static_cast<double>(std::min<std::size_t>(remaining, 900)));
  std::string fragment = reference.archive.substr(prefix_bytes, torn_len);
  if (!fragment.empty()) {
    fragment[static_cast<std::size_t>(crash.flip % (fragment.size() * 8)) /
             8] ^= static_cast<char>(1u << (crash.flip % 8));
  }
  file_bytes += fragment;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << file_bytes;
    if (!out.good()) {
      std::fprintf(stderr, "  cannot stage crash artifact %s\n", path.c_str());
      return false;
    }
  }

  // Resume onto a faulting sink: walk_prefix discards the torn tail, the
  // adopting writer continues from the checkpoint's byte extent.
  store::Error error;
  auto prefix = store::Writer::walk_prefix(path.string(),
                                           checkpoint.archive_sites, &error);
  if (!prefix.has_value()) {
    std::fprintf(stderr, "  walk_prefix rejected the crash artifact: %s\n",
                 error.to_string().c_str());
    return false;
  }
  store::IoStatus status;
  auto file = store::FileSink::open(path.string(), /*append=*/true, &status);
  if (file == nullptr) {
    std::fprintf(stderr, "  cannot reopen %s: %s\n", path.c_str(),
                 status.to_string().c_str());
    return false;
  }
  obs::MetricsRegistry metrics;
  auto faulting = std::make_unique<store::FaultingSink>(
      std::move(file), plan, &metrics, prefix->bytes,
      /*first_op=*/1'000'000 + seed_index);
  store::FaultingSink* injector = faulting.get();

  store::WriterOptions writer_options = reference.writer_options;
  writer_options.io.scrub_writes = true;
  writer_options.io.buffer_unsynced = true;
  writer_options.metrics = &metrics;
  store::Writer writer(std::move(faulting), writer_options,
                       std::move(*prefix));

  crawler::Crawler crawler(corpus);
  auto options = crawl_options(&writer, nullptr);
  crawler.resume(checkpoint, options, [](instrument::VisitLog&&) {});
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "  resumed pack did not finish: %s\n",
                 error.to_string().c_str());
    return false;
  }
  bool ok = true;
  if (read_file(path) != reference.archive) {
    std::fprintf(stderr, "  resumed archive differs from reference\n");
    ok = false;
  }
  if (!ledger_balances(*injector, metrics)) ok = false;
  return ok;
}

/// Phase 3: the recovered file re-verifies and reproduces Table 1 exactly.
bool run_analysis_check(const corpus::Corpus& corpus,
                        const Reference& reference,
                        const std::filesystem::path& path) {
  std::string table1;
  if (!table1_from_archive(corpus, read_file(path), &table1)) return false;
  if (table1 != reference.table1) {
    std::fprintf(stderr, "  Table 1 output diverged after recovery\n");
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const corpus::CorpusParams params = [] {
    corpus::CorpusParams p;
    p.site_count = bench::corpus_sites_from_env(400);
    return p;
  }();
  const corpus::Corpus corpus(params);
  const int seeds = chaos_seeds_from_env();
  bench::print_header("Storage chaos soak: pack/crash/resume under fault "
                      "injection", corpus);

  Reference reference;
  if (!build_reference(corpus, &reference)) return 1;
  if (reference.checkpoints.empty()) {
    std::fprintf(stderr, "error: crawl emitted no checkpoints (corpus too "
                 "small for interval %d?)\n", kCheckpointInterval);
    return 1;
  }
  std::printf("reference: %zu archive bytes, %zu checkpoints\n\n",
              reference.archive.size(), reference.checkpoints.size());

  const auto scratch = std::filesystem::temp_directory_path() /
                       "cg_bench_chaos.cgar";
  int failures = 0;
  std::int64_t total_injected = 0;
  for (int s = 0; s < seeds; ++s) {
    fault::IoFaultPlanParams plan_params;
    plan_params.seed += static_cast<std::uint64_t>(s) * kSeedStride;
    plan_params.op_fault_rate = 0.12;
    const fault::IoFaultPlan plan(plan_params);

    std::int64_t injected = 0;
    const bool pack_ok =
        run_faulty_pack(corpus, reference, plan, scratch, &injected);
    const bool resume_ok = run_crash_resume(
        corpus, reference, plan, static_cast<std::uint64_t>(s), scratch);
    const bool analysis_ok = run_analysis_check(corpus, reference, scratch);
    const bool ok = pack_ok && resume_ok && analysis_ok;
    failures += ok ? 0 : 1;
    total_injected += injected;
    std::printf("seed %2d (0x%016" PRIX64 "): %-4s  %5" PRId64
                " faults injected%s%s%s\n",
                s, plan_params.seed, ok ? "PASS" : "FAIL", injected,
                pack_ok ? "" : " [pack]", resume_ok ? "" : " [resume]",
                analysis_ok ? "" : " [analysis]");
  }
  std::filesystem::remove(scratch);

  std::printf("\n%d/%d seeds byte-identical; %" PRId64
              " faults injected and healed total\n",
              seeds - failures, seeds, total_injected);
  if (total_injected == 0) {
    std::fprintf(stderr, "error: the soak injected no faults — the chaos "
                 "plan is not exercising the healer\n");
    return 1;
  }
  std::printf("%s: chaos soak %s\n", failures == 0 ? "PASS" : "FAIL",
              failures == 0 ? "held the byte-identity contract"
                            : "found unrecovered corruption");
  return failures == 0 ? 0 : 1;
}
