// §8 evasion study: how scripts escape CookieGuard's attribution, and the
// counter-measures the paper sketches.
//
//   * CNAME cloaking: a tracker served from metrics.<site> (CNAME to
//     collect.cloaktrack.net) is attributed to the first party and inherits
//     the site-owner full-access policy — it sees the whole jar. Resolving
//     canonical names (resolve_cname_cloaking) demotes it to a third party.
//   * Inline embedding: a verbatim inline copy of the gtag snippet is
//     denied all cookie access by the safe-by-default policy (over-
//     blocking); behaviour-signature matching restores it as
//     googletagmanager.com without opening the jar to unknown inline code.
#include "cookieguard/cookieguard.h"

#include "bench_util.h"

namespace {

using namespace cg;

struct SubsetStats {
  double exfil_sites = 0;  // cross-domain exfiltration among subset sites
  double ga_set_sites = 0;  // sites where an inline script created a cookie
  int sites = 0;
};

SubsetStats crawl_subset(const corpus::Corpus& corpus,
                         const std::vector<int>& subset,
                         cookieguard::CookieGuard* guard) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;  // visit() never applies the fault plan
  if (guard != nullptr) options.extra_extensions.push_back(guard);

  int ga_sites = 0;
  for (const int index : subset) {
    const auto log = crawler.visit(index, options);
    bool ga = false;
    for (const auto& s : log.script_sets) {
      // Ground truth: the record came from an inline script (no script URL)
      // and it successfully created a cookie.
      if (s.true_domain.empty() &&
          s.change_type == cookies::CookieChange::Type::kCreated) {
        ga = true;
      }
    }
    ga_sites += ga ? 1 : 0;
    analyzer.ingest(log);
  }
  SubsetStats out;
  out.sites = static_cast<int>(subset.size());
  const auto& t = analyzer.totals();
  out.exfil_sites =
      t.sites_complete > 0 ? 100.0 * t.sites_doc_exfil / t.sites_complete : 0;
  out.ga_set_sites = out.sites > 0 ? 100.0 * ga_sites / out.sites : 0;
  return out;
}

}  // namespace

int main() {
  corpus::Corpus corpus(cg::bench::default_params());
  cg::bench::print_header("§8 — evasion via CNAME cloaking and inline "
                          "embedding, and counter-measures",
                          corpus);

  std::vector<int> cloaked_sites;
  std::vector<int> inline_sites;
  for (int i = 0; i < corpus.size(); ++i) {
    if (corpus.site(i).has_cloaked_tracker) cloaked_sites.push_back(i);
    if (corpus.site(i).has_inline_tracker) inline_sites.push_back(i);
  }
  std::printf("\nsites with a CNAME-cloaked tracker: %zu; with an inline "
              "vendor snippet: %zu\n",
              cloaked_sites.size(), inline_sites.size());

  // ---- CNAME cloaking -----------------------------------------------------
  std::printf("\n-- CNAME cloaking (cross-domain exfiltration on cloaked "
              "sites) --\n");
  {
    const auto none = crawl_subset(corpus, cloaked_sites, nullptr);
    cookieguard::CookieGuard plain_guard;
    const auto guarded = crawl_subset(corpus, cloaked_sites, &plain_guard);
    cookieguard::CookieGuardConfig uncloak_cfg;
    uncloak_cfg.resolve_cname_cloaking = true;
    cookieguard::CookieGuard uncloak_guard(uncloak_cfg);
    const auto uncloaked = crawl_subset(corpus, cloaked_sites, &uncloak_guard);

    std::printf("  %-44s %5.1f%% of cloaked sites\n", "no extension",
                none.exfil_sites);
    std::printf("  %-44s %5.1f%%  <- the cloaked script passes as the site "
                "owner\n",
                "CookieGuard (no uncloaking)", guarded.exfil_sites);
    std::printf("  %-44s %5.1f%%  <- canonical-name attribution closes the "
                "hole\n",
                "CookieGuard + resolve_cname_cloaking", uncloaked.exfil_sites);
  }

  // ---- inline embedding ---------------------------------------------------
  std::printf("\n-- Inline vendor snippet (gtag pasted inline) --\n");
  {
    const auto none = crawl_subset(corpus, inline_sites, nullptr);
    cookieguard::CookieGuard plain_guard;
    const auto guarded = crawl_subset(corpus, inline_sites, &plain_guard);

    cookieguard::SignatureDb signatures;
    signatures.build_from_catalog(corpus.catalog());
    cookieguard::CookieGuardConfig sig_cfg;
    sig_cfg.signature_db = &signatures;
    cookieguard::CookieGuard sig_guard(sig_cfg);
    const auto matched = crawl_subset(corpus, inline_sites, &sig_guard);

    std::printf("  signature database: %zu known vendor signatures\n",
                signatures.size());
    std::printf("  %-44s inline sets on %5.1f%% of sites\n", "no extension",
                none.ga_set_sites);
    std::printf("  %-44s inline sets on %5.1f%%  <- safe-by-default denies the "
                "legit snippet\n",
                "CookieGuard (inline denied)", guarded.ga_set_sites);
    std::printf("  %-44s inline sets on %5.1f%%  <- recognised as "
                "googletagmanager.com\n",
                "CookieGuard + signature matching", matched.ga_set_sites);
  }
  std::printf("\n");
  return 0;
}
