// Defense bake-off: the paper's evaluation tables re-run under each
// cookie-partitioning policy (src/policy/).
//
// The paper evaluates one defense — CookieGuard — against the status-quo
// first-party jar. This bench asks the comparative question: on the same
// corpus, what do Firefox First-Party Isolation and CHIPS partitioned
// cookies cost and catch? For each policy it reproduces:
//   * Table 3's axis: major/minor breakage on a 100-site sample,
//     paired against the no-defense baseline,
//   * Table 4's axis: mean load-event overhead vs the plain browser,
//   * Table 5's axis: cross-domain manipulation — how much of it the
//     defense actually blocks (engine refusals + extension vetoes +
//     cookies hidden from reads) and how much still reaches the jar,
// and prints one matrix row per policy, plus a markdown copy of the table
// for EXPERIMENTS.md.
//
// The expected shape IS the paper's argument (§6): FPI and CHIPS partition
// *between* top-level sites, so they neither break nor protect the
// first-party jar — in-jar cross-domain overwriting and deletion sail
// through both. Only CookieGuard, which partitions *within* the jar by
// script origin, blocks the manipulation the paper measures, at the cost
// of the Table 3 breakage it quantifies.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "breakage/breakage.h"
#include "perf/perf.h"

namespace {

using namespace cg;

struct MatrixRow {
  policy::PolicyKind kind = policy::PolicyKind::kNone;
  double breakage_minor_pct = 0;  // sites with any minor regression
  double breakage_major_pct = 0;  // sites with any major regression
  double overhead_ms = 0;         // mean load-event delta vs plain browser
  // Manipulation axis (Table 5): what the defense stopped...
  long long writes_blocked = 0;   // engine refusals + extension vetoes
  long long cookies_hidden = 0;   // cookies filtered out of reads
  long long partitioned_stores = 0;  // cookies diverted into partitions
  // ...and what still reached analysis.
  double doc_overwrite_pct = 0;  // sites with cross-domain overwriting
  double doc_delete_pct = 0;     // sites with cross-domain deletion
  double doc_exfil_pct = 0;      // sites with cross-domain exfiltration
};

/// The guard deployment each policy row pairs with: kCookieGuard is the
/// jar-identical engine plus the strict extension (the paper's default
/// deployment, same browsers as `cgsim crawl --guard`); the others run
/// bare.
bool wants_guard(policy::PolicyKind kind) {
  return kind == policy::PolicyKind::kCookieGuard;
}

MatrixRow evaluate_policy(const corpus::Corpus& corpus,
                          policy::PolicyKind kind, int threads) {
  MatrixRow row;
  row.kind = kind;

  // ---- Table 3 axis: breakage on the paper's 100-site sample. ----------
  breakage::BreakageEvaluator evaluator(corpus);
  const auto sample =
      evaluator.sample_sites(100, std::min(10000, corpus.size()));
  const auto breakage_summary = evaluator.summarize(
      sample,
      wants_guard(kind) ? breakage::GuardMode::kStrict
                        : breakage::GuardMode::kOff,
      kind);
  row.breakage_minor_pct =
      100.0 * breakage_summary.sites_minor / breakage_summary.sites;
  row.breakage_major_pct =
      100.0 * breakage_summary.sites_major / breakage_summary.sites;

  // ---- Table 4 axis: paired fault-free load-timing crawl. ---------------
  row.overhead_ms =
      perf::compare_page_load_policy(corpus, corpus.size(), kind, threads)
          .mean_overhead_ms;

  // ---- Table 5 axis: the measurement crawl under the policy. ------------
  const int workers =
      threads <= 0 ? runtime::ThreadPool::hardware_threads() : threads;
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.threads = threads;
  options.policy = kind;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  if (wants_guard(kind)) {
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>());
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
  }
  analysis::Analyzer analyzer(corpus.entities());
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });

  cookieguard::CookieGuard::Stats guard_stats;
  for (const auto& guard : guards) guard_stats.merge(guard->stats());
  row.writes_blocked =
      metrics.counter("policy.writes_blocked") +
      static_cast<long long>(guard_stats.writes_blocked);
  row.cookies_hidden = metrics.counter("cookieguard.cookies_hidden");
  row.partitioned_stores = metrics.counter("policy.partitioned_stores");

  const auto& t = analyzer.totals();
  const double n = std::max(1, t.sites_complete);
  row.doc_overwrite_pct = 100.0 * t.sites_doc_overwrite / n;
  row.doc_delete_pct = 100.0 * t.sites_doc_delete / n;
  row.doc_exfil_pct = 100.0 * t.sites_doc_exfil / n;
  return row;
}

void print_matrix(const std::vector<MatrixRow>& rows) {
  std::printf("\n-- defense bake-off matrix --\n");
  std::printf("  %-12s %7s %7s %9s %9s %9s %11s %8s %8s %8s\n", "policy",
              "minor%", "major%", "ovhd ms", "blocked", "hidden", "partition'd",
              "overwr%", "delete%", "exfil%");
  for (const auto& row : rows) {
    std::printf(
        "  %-12s %7.1f %7.1f %9.1f %9lld %9lld %11lld %8.1f %8.1f %8.1f\n",
        std::string(policy::to_string(row.kind)).c_str(),
        row.breakage_minor_pct, row.breakage_major_pct, row.overhead_ms,
        row.writes_blocked, row.cookies_hidden, row.partitioned_stores,
        row.doc_overwrite_pct, row.doc_delete_pct, row.doc_exfil_pct);
  }

  // Markdown copy, ready to paste into EXPERIMENTS.md.
  std::printf("\n-- markdown (EXPERIMENTS.md) --\n");
  std::printf(
      "| policy | breakage minor | breakage major | load overhead (ms) | "
      "manipulations blocked | cookies hidden | partitioned stores | "
      "overwrite sites | delete sites | exfil sites |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& row : rows) {
    std::printf(
        "| %s | %.1f%% | %.1f%% | %.1f | %lld | %lld | %lld | %.1f%% | "
        "%.1f%% | %.1f%% |\n",
        std::string(policy::to_string(row.kind)).c_str(),
        row.breakage_minor_pct, row.breakage_major_pct, row.overhead_ms,
        row.writes_blocked, row.cookies_hidden, row.partitioned_stores,
        row.doc_overwrite_pct, row.doc_delete_pct, row.doc_exfil_pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "Defense bake-off — CookieGuard vs FPI vs CHIPS vs none "
      "(Tables 3/4/5 per policy)",
      corpus, threads);

  std::vector<MatrixRow> rows;
  for (const auto kind :
       {policy::PolicyKind::kNone, policy::PolicyKind::kCookieGuard,
        policy::PolicyKind::kFirstPartyIsolation, policy::PolicyKind::kChips}) {
    std::printf("evaluating policy %s...\n",
                std::string(policy::to_string(kind)).c_str());
    rows.push_back(evaluate_policy(corpus, kind, threads));
  }
  print_matrix(rows);

  std::printf(
      "\n  reading: FPI/CHIPS partition BETWEEN top-level sites, so they "
      "neither break the\n  first-party jar nor protect it — in-jar "
      "cross-domain overwriting/deletion match the\n  none row. Only "
      "CookieGuard partitions WITHIN the jar (per script origin): it "
      "blocks\n  the Table 5 manipulation at the price of the Table 3 "
      "breakage.\n\n");
  return 0;
}
