// Reproduces Table 1: prevalence of cross-domain cookie actions across
// websites and affected cookie pairs, split by the API that created the
// cookie (document.cookie vs cookieStore).
//
// Paper values:
//   document.cookie: exfiltration 55.7% sites / 5.9% cookies (4,825)
//                    overwriting  31.5% sites / 2.7% cookies (2,212)
//                    deleting      6.3% sites / 1.8% cookies (1,475)
//   cookieStore:     exfiltration  0.7% sites / 16.3% cookies (62)
//                    overwriting / deleting: 0
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  using cookies::CookieSource;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("Table 1 — prevalence of cross-domain cookie actions",
                      corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));

  const auto& t = analyzer.totals();
  const double n = t.sites_complete;
  const double doc_pairs = analyzer.pair_count(CookieSource::kDocumentCookie);
  const double store_pairs = analyzer.pair_count(CookieSource::kCookieStore);

  std::printf("\nsites analyzed: %d; unique pairs: %.0f (doc) %.0f (store)\n",
              t.sites_complete, doc_pairs, store_pairs);

  struct Row {
    const char* action;
    double paper_sites, paper_cookies;
    double sites, cookies;
    int cookie_count;
  };
  const Row rows[] = {
      {"doc.cookie exfiltration", 55.7, 5.9, 100.0 * t.sites_doc_exfil / n,
       100.0 * analyzer.exfiltrated_pair_count(CookieSource::kDocumentCookie) /
           doc_pairs,
       analyzer.exfiltrated_pair_count(CookieSource::kDocumentCookie)},
      {"doc.cookie overwriting", 31.5, 2.7, 100.0 * t.sites_doc_overwrite / n,
       100.0 * analyzer.overwritten_pair_count(CookieSource::kDocumentCookie) /
           doc_pairs,
       analyzer.overwritten_pair_count(CookieSource::kDocumentCookie)},
      {"doc.cookie deleting", 6.3, 1.8, 100.0 * t.sites_doc_delete / n,
       100.0 * analyzer.deleted_pair_count(CookieSource::kDocumentCookie) /
           doc_pairs,
       analyzer.deleted_pair_count(CookieSource::kDocumentCookie)},
      {"cookieStore exfiltration", 0.7, 16.3, 100.0 * t.sites_store_exfil / n,
       store_pairs > 0
           ? 100.0 *
                 analyzer.exfiltrated_pair_count(CookieSource::kCookieStore) /
                 store_pairs
           : 0.0,
       analyzer.exfiltrated_pair_count(CookieSource::kCookieStore)},
      {"cookieStore overwriting", 0.0, 0.0,
       100.0 * t.sites_store_overwrite / n,
       store_pairs > 0
           ? 100.0 *
                 analyzer.overwritten_pair_count(CookieSource::kCookieStore) /
                 store_pairs
           : 0.0,
       analyzer.overwritten_pair_count(CookieSource::kCookieStore)},
      {"cookieStore deleting", 0.0, 0.0, 100.0 * t.sites_store_delete / n,
       store_pairs > 0
           ? 100.0 * analyzer.deleted_pair_count(CookieSource::kCookieStore) /
                 store_pairs
           : 0.0,
       analyzer.deleted_pair_count(CookieSource::kCookieStore)},
  };

  std::printf("\n  %-26s | %% of websites (paper/meas) | %% of cookies "
              "(paper/meas) | #cookies\n",
              "action");
  std::printf("  %s\n", std::string(94, '-').c_str());
  for (const auto& row : rows) {
    std::printf("  %-26s |        %5.1f / %5.1f       |       %5.1f / %5.1f"
                "       | %d\n",
                row.action, row.paper_sites, row.sites, row.paper_cookies,
                row.cookies, row.cookie_count);
  }
  std::printf("\n");
  return 0;
}
