// Serving-tier throughput, latency, and determinism: the cgserve engine
// under a seeded zipfian workload.
//
// Pipeline: crawl CG_SITES sites (default 20,000), pack them into an
// in-memory CGAR image, then
//
//   batch:  time the full-walk analyze_archive pass — the "6.5 s to answer
//           one question" baseline the serving tier exists to beat — and
//           check the server's load-time aggregate reproduces its summary
//           byte-for-byte (both are the same fold+merge algebra).
//   serve:  replay CG_SERVE_QUERIES mixed queries (90% per-site zipfian,
//           10% aggregates) through serve::Server, once on one thread and
//           once on CG_THREADS threads. Answers are hashed per query index;
//           the two runs must produce identical hash vectors — the
//           N-thread == 1-thread byte-identity the cache must not break.
//
// Gates (printed PASS/FAIL, non-zero exit on FAIL):
//   throughput >= CG_SERVE_MIN_QPS   (default 1000 queries/sec)
//   per-site p99 <= CG_SERVE_MAX_P99_MS (default 10 ms)
//   batch == serve aggregate, and 1-thread == N-thread answers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "report/report.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "store/writer.h"

namespace {

using namespace cg;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t fnv64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunResult {
  std::vector<std::uint64_t> answer_hashes;  // indexed by query id
  std::vector<double> site_latencies_s;      // kSite queries only
  double wall_s = 0;
};

/// Replays `queries` with `threads` workers pulling strided indices.
/// Answer hashes land at the query's own index, so the vector is
/// thread-count-independent iff the server is.
RunResult run_workload(const serve::Server& server,
                       const std::vector<serve::Query>& queries,
                       int threads) {
  RunResult result;
  result.answer_hashes.assign(queries.size(), 0);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < queries.size();
           i += static_cast<std::size_t>(threads)) {
        const bool is_site = queries[i].kind == serve::QueryKind::kSite;
        const auto q_start = std::chrono::steady_clock::now();
        const std::string answer = server.handle_text(queries[i]);
        if (is_site) {
          latencies[static_cast<std::size_t>(t)].push_back(
              seconds_since(q_start));
        }
        result.answer_hashes[i] = fnv64(answer);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result.wall_s = seconds_since(start);
  for (auto& per_thread : latencies) {
    result.site_latencies_s.insert(result.site_latencies_s.end(),
                                   per_thread.begin(), per_thread.end());
  }
  return result;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto i = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(i, values.size() - 1)];
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || v < 0) {
      std::fprintf(stderr, "error: %s must be a non-negative number\n", name);
      std::exit(2);
    }
    return v;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("Serving tier — cgserve throughput / latency / identity",
                      corpus, threads);

  // Phase 0 (untimed): crawl and pack in memory, so every number below is
  // the serving stack, not the simulator or disk.
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.threads = threads;
  store::WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(options);
  writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  std::ostringstream sink;
  store::Writer writer(&sink, writer_options);
  crawler.crawl(corpus.size(), options,
                [&](instrument::VisitLog&& log) { writer.add(log); });
  store::Error error;
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "error: pack failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  const std::string archive = sink.str();

  // Phase 1: the batch baseline — a full validating walk per question.
  auto batch_reader = store::Reader::from_buffer(archive, &error);
  if (!batch_reader) {
    std::fprintf(stderr, "error: archive rejected (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  analysis::Analyzer batch(corpus.entities());
  const auto batch_start = std::chrono::steady_clock::now();
  if (!analysis::analyze_archive(*batch_reader, batch, &error)) {
    std::fprintf(stderr, "error: batch walk failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  const double batch_s = seconds_since(batch_start);

  // Phase 2: server load (same walk, paid once; every query after is
  // index + cache or precomputed-summary reads).
  auto serve_reader = store::Reader::from_buffer(archive, &error);
  if (!serve_reader) {
    std::fprintf(stderr, "error: archive rejected (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  std::vector<store::Reader> readers;
  readers.push_back(std::move(*serve_reader));
  const auto load_start = std::chrono::steady_clock::now();
  const auto server =
      serve::Server::from_readers(std::move(readers), {}, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "error: server load failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  const double load_s = seconds_since(load_start);

  // Identity 1: the precomputed aggregate IS the batch summary. Render both
  // through the canonical report serializer and compare bytes.
  analysis::Analyzer from_serve(corpus.entities());
  from_serve.apply(analysis::SiteSummary(server->aggregate()));
  const bool batch_identical =
      report::summary_to_json(batch, 10).dump() ==
      report::summary_to_json(from_serve, 10).dump();

  // Phase 3: the workload. Same query stream for both runs (pure function
  // of the spec), so hash vectors are comparable index-by-index.
  serve::WorkloadSpec spec;
  spec.site_count = corpus.size();
  const auto query_count = static_cast<std::size_t>(bench::require_int(
      std::getenv("CG_SERVE_QUERIES") ? std::getenv("CG_SERVE_QUERIES")
                                      : "20000",
      "CG_SERVE_QUERIES", 1, INT_MAX));
  const std::vector<serve::Query> queries =
      serve::WorkloadGenerator(spec).generate(query_count);

  // Three replays of the same stream: a 1-thread reference (which also
  // warms the cache), a measured run at the box's parallelism, and an
  // oversubscribed identity run — more threads than cores forces harsher
  // interleavings, which is exactly what the byte-identity property must
  // survive. Latency is only read from the measured run; an oversubscribed
  // run's tail is scheduler noise, not serving cost.
  constexpr int kIdentityThreads = 8;
  const RunResult single = run_workload(*server, queries, 1);
  const RunResult measured = run_workload(*server, queries, threads);
  const RunResult identity =
      run_workload(*server, queries, kIdentityThreads);
  const bool threads_identical =
      single.answer_hashes == measured.answer_hashes &&
      single.answer_hashes == identity.answer_hashes;

  const double qps =
      measured.wall_s > 0
          ? static_cast<double>(queries.size()) / measured.wall_s
          : 0.0;
  const double p50_ms = percentile(measured.site_latencies_s, 0.50) * 1e3;
  const double p99_ms = percentile(measured.site_latencies_s, 0.99) * 1e3;
  const serve::BlockCache::Stats cache = server->cache().stats();

  const double min_qps = env_double("CG_SERVE_MIN_QPS", 1000.0);
  const double max_p99_ms = env_double("CG_SERVE_MAX_P99_MS", 10.0);
  const bool qps_ok = qps >= min_qps;
  const bool p99_ok = p99_ms <= max_p99_ms;

  std::printf("\nqueries: %zu (%zu per-site), %d serving thread%s\n",
              queries.size(), measured.site_latencies_s.size(), threads,
              threads == 1 ? "" : "s");
  std::printf("  %-30s %10.3f s   (walk + fold, per question)\n",
              "batch analyze_archive", batch_s);
  std::printf("  %-30s %10.3f s   (walk + fold, once at startup)\n",
              "server load", load_s);
  std::printf("  %-30s %10.1f queries/s  (bar: >= %.0f)  [%s]\n",
              "serving throughput", qps, min_qps, qps_ok ? "PASS" : "FAIL");
  std::printf("  %-30s %10.3f ms\n", "per-site latency p50", p50_ms);
  std::printf("  %-30s %10.3f ms  (bar: <= %.1f)  [%s]\n",
              "per-site latency p99", p99_ms, max_p99_ms,
              p99_ok ? "PASS" : "FAIL");
  std::printf("  %-30s %10.1f%%  (%lld hits / %lld misses, %lld evictions)\n",
              "cache hit rate",
              cache.hits + cache.misses > 0
                  ? 100.0 * static_cast<double>(cache.hits) /
                        static_cast<double>(cache.hits + cache.misses)
                  : 0.0,
              static_cast<long long>(cache.hits),
              static_cast<long long>(cache.misses),
              static_cast<long long>(cache.evictions));
  std::printf("  %-30s %10s\n", "serve aggregate == batch",
              batch_identical ? "PASS" : "FAIL");
  std::printf("  %-30s %10s  (1 == %d == %d thread answers)\n",
              "thread-count identity", threads_identical ? "PASS" : "FAIL",
              threads, kIdentityThreads);
  std::printf("\n");
  return batch_identical && threads_identical && qps_ok && p99_ok ? 0 : 1;
}
