// Measures what the observability subsystem costs the crawl.
//
//   1. Disabled path (the default): no TraceRecorder, no MetricsRegistry —
//      every emission helper is one thread-local pointer test. This is the
//      configuration every other bench and the paper-reproduction pipeline
//      runs in, so its sites/sec must stay within 2% of the pre-obs
//      baseline (EXPERIMENTS.md "Crawl scaling" table; override with
//      CG_BASELINE_SITES_PER_SEC=<n> to enforce against a measured value —
//      the bench exits nonzero on >2% regression against it).
//   2. Null-sink microbench: ns per emission call with no scope bound.
//   3. Enabled paths, for scale: metrics only, crawl-detail trace, and
//      full-detail trace, all streamed to a null sink file.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace cg;

double crawl_sites_per_sec(const corpus::Corpus& corpus,
                           crawler::CrawlOptions& options) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  const auto start = std::chrono::steady_clock::now();
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds > 0 ? corpus.size() / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("observability overhead (src/obs/)", corpus, threads);

  // 1. Disabled path — what every non-traced crawl pays. One untimed
  // warmup crawl first so cold caches don't masquerade as obs overhead.
  crawler::CrawlOptions options;
  options.threads = threads;
  crawl_sites_per_sec(corpus, options);
  const double off = crawl_sites_per_sec(corpus, options);
  std::printf("\n  tracing off (null sink):        %8.1f sites/sec\n", off);

  // 2. Null-sink microbench: emission helpers with no ObsScope bound.
  {
    constexpr int kCalls = 50'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kCalls; ++i) {
      obs::metric_add("bench.counter");
      obs::span(obs::Detail::kFull, "bench", "span", i, 1);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        (2.0 * kCalls);
    std::printf("  null-sink emission:             %8.2f ns/call\n", ns);
  }

  // 3. Enabled paths, streamed to a discard file.
  std::ofstream devnull("/dev/null");
  {
    obs::MetricsRegistry metrics;
    options.metrics = &metrics;
    const double v = crawl_sites_per_sec(corpus, options);
    std::printf("  metrics only:                   %8.1f sites/sec (%+.1f%%)\n",
                v, off > 0 ? 100.0 * (v - off) / off : 0.0);
    options.metrics = nullptr;
  }
  {
    obs::TraceRecorder recorder({obs::Detail::kCrawl, false}, &devnull);
    options.trace = &recorder;
    const double v = crawl_sites_per_sec(corpus, options);
    std::printf("  trace (crawl detail):           %8.1f sites/sec (%+.1f%%)\n",
                v, off > 0 ? 100.0 * (v - off) / off : 0.0);
    options.trace = nullptr;
  }
  {
    obs::TraceRecorder recorder({obs::Detail::kFull, false}, &devnull);
    obs::MetricsRegistry metrics;
    options.trace = &recorder;
    options.metrics = &metrics;
    const double v = crawl_sites_per_sec(corpus, options);
    std::printf("  trace (full) + metrics:         %8.1f sites/sec (%+.1f%%)\n",
                v, off > 0 ? 100.0 * (v - off) / off : 0.0);
    options.trace = nullptr;
    options.metrics = nullptr;
  }

  // Regression gate against a recorded pre-obs baseline, when provided.
  if (const char* env = std::getenv("CG_BASELINE_SITES_PER_SEC")) {
    const double baseline = std::atof(env);
    if (baseline > 0) {
      const double regression = 100.0 * (baseline - off) / baseline;
      std::printf("\n  vs baseline %.1f sites/sec: %+.1f%% (gate: <2%% loss)\n",
                  baseline, -regression);
      if (regression > 2.0) {
        std::fprintf(stderr,
                     "FAIL: tracing-off crawl regressed %.1f%% vs baseline\n",
                     regression);
        return 1;
      }
    }
  }
  return 0;
}
