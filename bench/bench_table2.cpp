// Reproduces Table 2: top-20 cookies most frequently exfiltrated by
// cross-domain scripts, with owner domain, exfiltrator/destination entity
// counts, and top-3 entities per side (sorted by destination-entity count).
//
// Paper headline: _ga (owner googletagmanager.com) leads; Microsoft, Yandex
// and Pinterest are top exfiltrators; HubSpot, Microsoft and Amazon are top
// destinations.
#include "bench_util.h"

namespace {

std::string top3(const std::map<std::string, int>& counts) {
  std::string out;
  for (const auto& [entity, n] : cg::analysis::top_counts(counts, 3)) {
    if (!out.empty()) out += ", ";
    out += entity;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "Table 2 — top 20 cookies exfiltrated by cross-domain scripts", corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));

  std::printf("\n  %-22s %-22s %6s %6s  %-34s %s\n", "cookie", "owner domain",
              "#exfil", "#dest", "top exfiltrator entities",
              "top destination entities");
  std::printf("  %s\n", std::string(130, '-').c_str());
  for (const auto& row : analyzer.top_exfiltrated(20)) {
    std::printf("  %-22s %-22s %6zu %6zu  %-34s %s\n",
                row.pair.name.c_str(), row.pair.owner_domain.c_str(),
                row.stats->exfiltrator_entities.size(),
                row.stats->destination_entities.size(),
                top3(row.stats->exfiltrator_entities).c_str(),
                top3(row.stats->destination_entities).c_str());
  }
  std::printf("\n  paper row 1: _ga | googletagmanager.com | 1191 | 664 | "
              "Microsoft, Yandex, Pinterest | HubSpot, Microsoft, Amazon\n"
              "  (absolute entity counts scale with the catalog's vendor\n"
              "   population; ordering and entity mix are the comparison "
              "targets)\n\n");
  return 0;
}
