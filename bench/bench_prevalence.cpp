// Reproduces the §5.1 prevalence statistics and the §5.6 inclusion-path
// breakdown:
//   * 93.3% of sites embed ≥1 third-party script in the main frame,
//   * 19 distinct third-party scripts per site on average,
//   * 70% of third-party scripts are advertising/tracking,
//   * 15 third-party vs 4 first-party cookies set per site,
//   * indirect inclusions outnumber direct by 2.5x; 33% of indirect
//     third-party scripts are advertising/tracking.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "§5.1 / §5.6 — prevalence of third-party scripts in the main frame",
      corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  const auto trace = bench::trace_recorder_from_args(argc, argv);
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, trace.get(),
                               bench::policy_from_args(argc, argv));

  const auto& t = analyzer.totals();
  const double crawled = t.sites_crawled;

  std::printf("\nsites crawled: %d, with complete logs: %d (paper: "
              "20,000 / 14,917)\n\n",
              t.sites_crawled, t.sites_complete);

  bench::print_row("sites with >=1 third-party script",
                   93.3, 100.0 * t.sites_with_third_party / crawled);
  bench::print_row("distinct third-party scripts per site (avg)", 19.0,
                   double(t.third_party_script_count) / crawled, "");
  bench::print_row("third-party scripts that are ad/tracking", 70.0,
                   100.0 * double(t.third_party_ad_tracking_count) /
                       double(t.third_party_script_count));
  bench::print_row("third-party cookies set per site (avg)", 15.0,
                   double(t.tp_cookies_set) / t.sites_complete, "");
  bench::print_row("first-party cookies set per site (avg)", 4.0,
                   double(t.fp_cookies_set) / t.sites_complete, "");

  std::printf("\n-- §5.6 inclusion paths (third-party scripts) --\n");
  bench::print_row("indirect / direct inclusion ratio", 2.5,
                   double(t.indirect_inclusions) /
                       double(t.direct_inclusions), "x");
  bench::print_row("indirect inclusions that are ad/tracking", 33.0,
                   100.0 * double(t.indirect_ad_tracking) /
                       double(t.indirect_inclusions));
  std::printf("\n");
  return 0;
}
