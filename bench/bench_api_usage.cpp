// Reproduces the §5.2 script-cookie API usage statistics:
//   * document.cookie invoked on 96.3% of sites; 81,918 unique cookie pairs
//     set by 92,235 scripts,
//   * cookieStore on only 2.8% of sites; 411 pairs, 13 unique names,
//     dominated by Shopify's keep_alive and Admiral's _awl.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("§5.2 — usage of script cookie APIs in the wild",
                      corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));

  const auto& t = analyzer.totals();
  const double n = t.sites_complete;

  bench::print_row("sites invoking document.cookie", 96.3,
                   100.0 * t.sites_using_document_cookie / n);
  bench::print_row("sites invoking cookieStore", 2.8,
                   100.0 * t.sites_using_cookie_store / n);

  const int doc_pairs =
      analyzer.pair_count(cookies::CookieSource::kDocumentCookie);
  const int store_pairs =
      analyzer.pair_count(cookies::CookieSource::kCookieStore);
  std::printf("\n  unique cookie pairs (name, setter domain):\n");
  std::printf("    document.cookie/header: %d   (paper: 81,918 at 20k sites)\n",
              doc_pairs);
  std::printf("    cookieStore:            %d   (paper: 411)\n", store_pairs);
  std::printf("  unique setter script URLs: %lld (paper: 92,235)\n",
              t.unique_setter_scripts);

  std::printf("\n  cookieStore cookie names (paper: 13 names, ~90%% being "
              "keep_alive and _awl):\n");
  for (const auto& name : t.store_cookie_names) {
    std::printf("    %s\n", name.c_str());
  }
  std::printf("  cookieStore setter script domains: %zu (paper: 361)\n\n",
              t.store_script_domains.size());
  return 0;
}
