// CGAR store throughput and density: how fast does the archive write and
// read back, and how much smaller is it than the equivalent JSON logs the
// paper's extension would have posted?
//
// Reports pack (encode + frame + CRC) and replay (validate + decode)
// throughput in MB/s, archive bytes/site, and the size ratio against a
// JSON serialization of the same VisitLogs. The acceptance bar is archive
// <= 25% of JSON — checked here and printed pass/fail so CI can grep it.
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "report/json.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using namespace cg;

// The JSON strawman: the same VisitLog fields the CGAR codec persists,
// serialized the way the paper's extension posts them (compact dump, one
// object per site). Field-for-field parity keeps the comparison honest.
std::size_t json_bytes(const instrument::VisitLog& log) {
  report::Json j = report::Json::object();
  j["site_host"] = log.site_host;
  j["site"] = log.site;
  j["rank"] = log.rank;
  j["pages_visited"] = log.pages_visited;
  j["has_cookie_logs"] = log.has_cookie_logs;
  j["has_request_logs"] = log.has_request_logs;
  j["failure"] = std::string(fault::failure_class_name(log.failure));
  j["attempts"] = log.attempts;
  report::Json timings = report::Json::object();
  timings["dom_interactive"] = log.landing_timings.dom_interactive;
  timings["dom_content_loaded"] = log.landing_timings.dom_content_loaded;
  timings["load_event"] = log.landing_timings.load_event;
  j["landing_timings"] = std::move(timings);

  report::Json script_sets = report::Json::array();
  for (const auto& r : log.script_sets) {
    report::Json o = report::Json::object();
    o["cookie_name"] = r.cookie_name;
    o["value"] = r.value;
    o["setter_url"] = r.setter_url;
    o["setter_domain"] = r.setter_domain;
    o["true_domain"] = r.true_domain;
    o["api"] = static_cast<int>(r.api);
    o["change_type"] = static_cast<int>(r.change_type);
    o["category"] = static_cast<int>(r.category);
    o["inclusion"] = static_cast<int>(r.inclusion);
    o["value_changed"] = r.value_changed;
    o["expires_changed"] = r.expires_changed;
    o["domain_changed"] = r.domain_changed;
    o["path_changed"] = r.path_changed;
    o["prev_expires"] = r.prev_expires;
    o["new_expires"] = r.new_expires;
    o["time"] = r.time;
    script_sets.push_back(std::move(o));
  }
  j["script_sets"] = std::move(script_sets);

  report::Json http_sets = report::Json::array();
  for (const auto& r : log.http_sets) {
    report::Json o = report::Json::object();
    o["cookie_name"] = r.cookie_name;
    o["value"] = r.value;
    o["response_host"] = r.response_host;
    o["setter_domain"] = r.setter_domain;
    o["http_only"] = r.http_only;
    o["first_party"] = r.first_party;
    o["change_type"] = static_cast<int>(r.change_type);
    o["time"] = r.time;
    http_sets.push_back(std::move(o));
  }
  j["http_sets"] = std::move(http_sets);

  report::Json reads = report::Json::array();
  for (const auto& r : log.reads) {
    report::Json o = report::Json::object();
    o["reader_url"] = r.reader_url;
    o["reader_domain"] = r.reader_domain;
    o["api"] = static_cast<int>(r.api);
    o["cookies_returned"] = r.cookies_returned;
    o["time"] = r.time;
    reads.push_back(std::move(o));
  }
  j["reads"] = std::move(reads);

  report::Json requests = report::Json::array();
  for (const auto& r : log.requests) {
    report::Json o = report::Json::object();
    o["url"] = r.url;
    o["host"] = r.host;
    o["dest_domain"] = r.dest_domain;
    o["initiator_url"] = r.initiator_url;
    o["initiator_domain"] = r.initiator_domain;
    o["destination"] = static_cast<int>(r.destination);
    o["time"] = r.time;
    requests.push_back(std::move(o));
  }
  j["requests"] = std::move(requests);

  report::Json dom_mods = report::Json::array();
  for (const auto& r : log.dom_mods) {
    report::Json o = report::Json::object();
    o["modifier_domain"] = r.modifier_domain;
    o["target_domain"] = r.target_domain;
    dom_mods.push_back(std::move(o));
  }
  j["dom_mods"] = std::move(dom_mods);

  report::Json includes = report::Json::array();
  for (const auto& r : log.includes) {
    report::Json o = report::Json::object();
    o["script_id"] = r.script_id;
    o["url"] = r.url;
    o["domain"] = r.domain;
    o["category"] = static_cast<int>(r.category);
    o["inclusion"] = static_cast<int>(r.inclusion);
    o["is_inline"] = r.is_inline;
    includes.push_back(std::move(o));
  }
  j["includes"] = std::move(includes);

  return j.dump().size() + 1;  // + newline, one JSON line per site
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("CGAR store — write/read throughput and size vs JSON",
                      corpus, threads);

  // Phase 0: the crawl itself, kept out of both timed sections. Logs are
  // retained in memory so pack/replay timings measure the codec, not the
  // simulator.
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.threads = threads;
  std::vector<instrument::VisitLog> logs;
  logs.reserve(static_cast<std::size_t>(corpus.size()));
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    logs.push_back(std::move(log));
  });
  const fault::FaultPlan plan = crawler.plan_for(options);

  // Phase 1: pack. Writer against an in-memory stream so the numbers are
  // codec throughput, not disk weather.
  store::WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  std::ostringstream sink;
  const auto write_start = std::chrono::steady_clock::now();
  store::Writer writer(&sink, writer_options);
  for (const auto& log : logs) writer.add(log);
  store::Error error;
  if (!writer.finish(&error)) {
    std::fprintf(stderr, "error: pack failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  const double write_s = seconds_since(write_start);
  const std::string archive = sink.str();
  const double archive_mb = static_cast<double>(archive.size()) / 1e6;

  // Phase 2: replay. Full validating read — footer walk, CRC per block,
  // decode every record.
  const auto read_start = std::chrono::steady_clock::now();
  const auto reader = store::Reader::from_buffer(archive, &error);
  if (!reader) {
    std::fprintf(stderr, "error: replay open failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }
  std::size_t records = 0;
  const bool ok = reader->for_each(
      [&records](instrument::VisitLog&& log) {
        records += log.script_sets.size() + log.http_sets.size() +
                   log.reads.size() + log.requests.size() +
                   log.dom_mods.size() + log.includes.size();
      },
      &error);
  const double read_s = seconds_since(read_start);
  if (!ok) {
    std::fprintf(stderr, "error: replay failed (%s)\n",
                 error.to_string().c_str());
    return 1;
  }

  // Phase 3: the JSON equivalent, size only (not timed — JSON writing is
  // not the baseline under test, its bytes are).
  std::size_t json_total = 0;
  for (const auto& log : logs) json_total += json_bytes(log);
  const double json_mb = static_cast<double>(json_total) / 1e6;

  const double sites = static_cast<double>(logs.size());
  const double ratio =
      json_total > 0
          ? static_cast<double>(archive.size()) / static_cast<double>(json_total)
          : 0.0;
  std::printf("\nsites: %zu, records: %zu\n", logs.size(), records);
  std::printf("  %-28s %8.1f MB/s  (%.2f MB in %.3f s)\n", "pack (write)",
              write_s > 0 ? archive_mb / write_s : 0.0, archive_mb, write_s);
  std::printf("  %-28s %8.1f MB/s  (%.2f MB in %.3f s)\n", "replay (read)",
              read_s > 0 ? archive_mb / read_s : 0.0, archive_mb, read_s);
  std::printf("  %-28s %8.1f bytes/site\n", "archive density",
              sites > 0 ? static_cast<double>(archive.size()) / sites : 0.0);
  std::printf("  %-28s %8.1f bytes/site  (%.2f MB)\n", "JSON equivalent",
              sites > 0 ? static_cast<double>(json_total) / sites : 0.0,
              json_mb);
  std::printf("  %-28s %8.1f%% of JSON (bar: <= 25%%)  [%s]\n", "size ratio",
              100.0 * ratio, ratio <= 0.25 ? "PASS" : "FAIL");
  std::printf("\n");
  return ratio <= 0.25 ? 0 : 1;
}
