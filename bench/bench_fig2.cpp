// Reproduces Figure 2: top-20 script-hosting domains involved in
// cross-domain cookie exfiltration, ranked by number of unique cookies
// exfiltrated.
//
// Paper headline: google-analytics.com leads (3.3% of the 82k cookies);
// RTB exchanges (doubleclick.net, amazon-adsystem.com, pubmatic.com) follow.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "Figure 2 — top 20 cross-domain exfiltrator script domains", corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));

  const double total_pairs =
      analyzer.pair_count(cookies::CookieSource::kDocumentCookie) +
      analyzer.pair_count(cookies::CookieSource::kCookieStore);

  std::printf("\n  %-30s %10s %10s\n", "script domain", "#cookies",
              "% of all");
  std::printf("  %s\n", std::string(54, '-').c_str());
  for (const auto& [domain, count] : analyzer.top_exfiltrator_domains(20)) {
    std::printf("  %-30s %10d %9.2f%%  %s\n", domain.c_str(), count,
                100.0 * count / total_pairs,
                std::string(static_cast<std::size_t>(
                                50.0 * count /
                                analyzer.top_exfiltrator_domains(1)[0].second),
                            '#')
                    .c_str());
  }
  std::printf("\n  paper: google-analytics.com #1 at 3.3%% of all cookies, "
              "followed by RTB\n  exchanges (doubleclick.net, "
              "amazon-adsystem.com, pubmatic.com).\n\n");
  return 0;
}
