// Reproduces Table 3: website breakage under CookieGuard, assessed on a
// random sample of 100 sites from the top 10k (the paper's manual
// evaluation, here replaced by executable functionality probes).
//
// Paper (strict CookieGuard):
//           navigation  SSO  appearance  functionality
//   minor       0%       1%      0%           3%
//   major       0%      11%      0%           3%
// Entity grouping + per-site domain policies reduce breakage to ~3%.
#include <algorithm>

#include "breakage/breakage.h"

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  using breakage::GuardMode;
  corpus::Corpus corpus(bench::default_params());
  bench::print_header("Table 3 — website breakage under CookieGuard", corpus);
  // --policy/CG_POLICY pairs each deployment with a partitioning engine;
  // cookieguard's engine is jar-identical to none, so Table 3 reproduces
  // exactly under it (the bake-off matrix exercises fpi/chips).
  const auto policy = bench::policy_from_args(argc, argv);

  breakage::BreakageEvaluator evaluator(corpus);
  const auto sample = evaluator.sample_sites(
      100, std::min(10000, corpus.size()));
  std::printf("\nsample: %zu sites from the top %d\n", sample.size(),
              std::min(10000, corpus.size()));

  static const char* kAspects[] = {"navigation", "sso", "appearance",
                                   "functionality"};
  for (const auto mode :
       {GuardMode::kOff, GuardMode::kStrict, GuardMode::kEntityGrouping,
        GuardMode::kGroupingPlusPolicies}) {
    const auto summary = evaluator.summarize(sample, mode, policy);
    std::printf("\n-- %s --\n", breakage::to_string(mode));
    std::printf("  %-14s %8s %8s\n", "aspect", "minor", "major");
    for (int aspect = 0; aspect < 4; ++aspect) {
      std::printf("  %-14s %7.1f%% %7.1f%%\n", kAspects[aspect],
                  100.0 * summary.minor[aspect] / summary.sites,
                  100.0 * summary.major[aspect] / summary.sites);
    }
    std::printf("  sites with any major breakage: %.1f%%\n",
                100.0 * summary.sites_major / summary.sites);
  }

  std::printf("\n  paper: strict mode shows 1%% minor / 11%% major SSO and "
              "3%%/3%% functionality\n  breakage; the entity whitelist + "
              "domain policies reduce breakage to 3%%.\n\n");
  return 0;
}
