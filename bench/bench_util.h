// Shared helpers for the experiment-reproduction binaries.
//
// Every bench crawls the synthetic corpus (default: the paper's 20,000
// sites; override with CG_SITES=<n> for quick runs) and prints the same
// rows/series as the corresponding paper table or figure, with the paper's
// reported value alongside for comparison.
//
// Crawls shard across worker threads (`--threads N` argument, CG_THREADS
// env, default: all hardware threads) — byte-identical output at any
// thread count, see src/runtime/. Pass `--trace FILE` to any bench using
// trace_recorder_from_args to export the crawl as Chrome trace-event JSON.
//
// Malformed CG_SITES / CG_THREADS / --threads values are a hard error, not
// a silent fallback: a bench that quietly ran with the wrong corpus size
// has produced hours of wrong numbers before anyone notices.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/archive.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "obs/trace.h"
#include "policy/partition_policy.h"
#include "runtime/thread_pool.h"
#include "store/reader.h"

namespace cg::bench {

/// Strict integer parse: the whole string must be a base-10 integer in
/// [min, max]. Exits with a clear message naming `what` otherwise.
inline int require_int(const char* text, const char* what, int min_value,
                       int max_value) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < min_value ||
      value > max_value) {
    std::fprintf(stderr,
                 "error: %s must be an integer in [%d, %d], got \"%s\"\n",
                 what, min_value, max_value, text);
    std::exit(2);
  }
  return static_cast<int>(value);
}

inline int corpus_sites_from_env(int fallback = 20000) {
  if (const char* env = std::getenv("CG_SITES")) {
    return require_int(env, "CG_SITES", 1, INT_MAX);
  }
  return fallback;
}

inline corpus::CorpusParams default_params() {
  corpus::CorpusParams params;
  params.site_count = corpus_sites_from_env();
  return params;
}

/// Worker threads for the measurement crawl: `--threads N` wins, then
/// CG_THREADS=<n>, else every hardware thread. 0 means all hardware
/// threads; non-numeric or negative values abort.
inline int threads_from_args(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const int n = require_int(argv[i + 1], "--threads", 0, INT_MAX);
      return n > 0 ? n : runtime::ThreadPool::hardware_threads();
    }
  }
  if (const char* env = std::getenv("CG_THREADS")) {
    const int n = require_int(env, "CG_THREADS", 0, INT_MAX);
    return n > 0 ? n : runtime::ThreadPool::hardware_threads();
  }
  return runtime::ThreadPool::hardware_threads();
}

/// Partitioning engine for the defense bake-off: `--policy NAME` wins, then
/// CG_POLICY=<name>, else none. Accepts the cgsim grammar
/// (none/cookieguard/fpi/chips); anything else aborts — a bench that
/// silently fell back to the wrong defense has produced hours of wrong
/// numbers before anyone notices.
inline policy::PolicyKind policy_from_args(int argc = 0,
                                           char** argv = nullptr) {
  const char* name = std::getenv("CG_POLICY");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0) name = argv[i + 1];
  }
  if (name == nullptr) return policy::PolicyKind::kNone;
  const auto kind = policy::parse_policy(name);
  if (!kind) {
    std::fprintf(stderr,
                 "error: --policy/CG_POLICY must be none, cookieguard, fpi, "
                 "or chips, got \"%s\"\n",
                 name);
    std::exit(2);
  }
  return *kind;
}

/// A streaming TraceRecorder for `--trace FILE` (or CG_TRACE=FILE), or null
/// when tracing was not requested. Wire the result into
/// CrawlOptions::trace / run_measurement_crawl; the file is finished when
/// the recorder is destroyed. `--trace-detail full` upgrades from the
/// crawl-level default.
struct BenchTrace {
  // Heap-held so the recorder's stream pointer survives moves of this
  // struct (declared before `recorder` so the stream outlives finish()).
  std::unique_ptr<std::ofstream> out;
  std::unique_ptr<obs::TraceRecorder> recorder;
  obs::TraceRecorder* get() const { return recorder.get(); }
};

inline BenchTrace trace_recorder_from_args(int argc = 0,
                                           char** argv = nullptr) {
  BenchTrace trace;
  const char* path = std::getenv("CG_TRACE");
  obs::TraceConfig config;
  config.detail = obs::Detail::kCrawl;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-detail") == 0 && i + 1 < argc &&
               std::strcmp(argv[i + 1], "full") == 0) {
      config.detail = obs::Detail::kFull;
    }
  }
  if (path == nullptr) return trace;
  trace.out = std::make_unique<std::ofstream>(path);
  if (!*trace.out) {
    std::fprintf(stderr, "error: cannot open trace file %s\n", path);
    std::exit(2);
  }
  trace.recorder =
      std::make_unique<obs::TraceRecorder>(config, trace.out.get());
  return trace;
}

inline void print_header(const char* title, const corpus::Corpus& corpus,
                         int threads = 1) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("corpus: %d sites, seed 0x%llX, %zu catalog scripts"
              ", %d crawl thread%s\n",
              corpus.size(),
              static_cast<unsigned long long>(corpus.params().seed),
              corpus.catalog().size(), threads, threads == 1 ? "" : "s");
  std::printf("================================================================\n");
}

/// CG_ARCHIVE=<file.cgar>: replay a packed archive (cgsim pack) through the
/// analyzer instead of crawling live. Only the plain measurement crawl —
/// faults on, no extension — is archived, so that is the only configuration
/// the archive can substitute for; provenance in the footer (corpus seed,
/// site count, fault-plan seed) is checked against what the live crawl
/// would have used, and any mismatch is a hard error rather than hours of
/// silently-wrong numbers. Returns true when the archive was consumed.
inline bool analyzer_from_archive_env(const corpus::Corpus& corpus,
                                      analysis::Analyzer& analyzer) {
  const char* path = std::getenv("CG_ARCHIVE");
  if (path == nullptr) return false;
  store::Error error;
  const auto reader = store::Reader::open(path, &error);
  if (!reader) {
    std::fprintf(stderr, "error: CG_ARCHIVE %s rejected (%s)\n", path,
                 error.to_string().c_str());
    std::exit(2);
  }
  if (reader->kind() != store::ArchiveKind::kFull) {
    std::fprintf(stderr,
                 "error: CG_ARCHIVE %s is a %s archive — benches replay "
                 "full archives only (materialize the wave through cgsim "
                 "query --archive <chain> instead)\n",
                 path,
                 std::string(store::archive_kind_name(reader->kind()))
                     .c_str());
    std::exit(2);
  }
  // The recorded policy is hard provenance, same as the seeds: the archive
  // substitutes for the *plain* measurement crawl, so an archive packed
  // under any partitioning policy is the wrong dataset.
  if (reader->policy() != store::ArchivePolicy::kNone) {
    std::fprintf(stderr,
                 "error: CG_ARCHIVE %s was packed under --policy %s; the "
                 "measurement crawl it substitutes for runs with no "
                 "partitioning policy — repack without --policy\n",
                 path,
                 std::string(store::archive_policy_name(reader->policy()))
                     .c_str());
    std::exit(2);
  }
  if (reader->corpus_seed() != corpus.params().seed ||
      reader->site_count() != corpus.size()) {
    std::fprintf(stderr,
                 "error: CG_ARCHIVE %s was packed from a different corpus "
                 "(%d sites, seed 0x%llX; this run wants %d sites, "
                 "seed 0x%llX)\n",
                 path, reader->site_count(),
                 static_cast<unsigned long long>(reader->corpus_seed()),
                 corpus.size(),
                 static_cast<unsigned long long>(corpus.params().seed));
    std::exit(2);
  }
  crawler::Crawler crawler(corpus);
  const fault::FaultPlan plan = crawler.plan_for(crawler::CrawlOptions{});
  const std::uint64_t expected_fault_seed =
      plan.enabled() ? plan.params().seed : 0;
  if (reader->fault_seed() != expected_fault_seed) {
    std::fprintf(stderr,
                 "error: CG_ARCHIVE %s was packed under a different fault "
                 "plan (seed 0x%llX, expected 0x%llX) — repack without "
                 "--no-faults\n",
                 path, static_cast<unsigned long long>(reader->fault_seed()),
                 static_cast<unsigned long long>(expected_fault_seed));
    std::exit(2);
  }
  if (!analysis::analyze_archive(*reader, analyzer, &error)) {
    std::fprintf(stderr, "error: CG_ARCHIVE %s is corrupt (%s)\n", path,
                 error.to_string().c_str());
    std::exit(2);
  }
  return true;
}

/// Runs the measurement crawl (no enforcement) into `analyzer`. A non-null
/// `extra` extension forces a sequential crawl (shared instance); benches
/// that want an extension at N threads use CrawlOptions::extension_factory
/// directly. A non-null `trace` recorder receives the crawl's virtual-time
/// trace. With CG_ARCHIVE set, the plain configuration (no extension,
/// faults on, no trace) replays the archive instead of crawling; other
/// configurations — guarded or fault-free comparison crawls the archive
/// does not represent — always run live.
inline void run_measurement_crawl(
    const corpus::Corpus& corpus, analysis::Analyzer& analyzer,
    browser::Extension* extra = nullptr, bool with_faults = true,
    int threads = 1, obs::TraceRecorder* trace = nullptr,
    policy::PolicyKind policy = policy::PolicyKind::kNone) {
  // Archives record the default single-jar crawl; a policy run must crawl
  // live (the archive cannot substitute for a partitioned jar).
  if (extra == nullptr && with_faults && trace == nullptr &&
      policy == policy::PolicyKind::kNone &&
      analyzer_from_archive_env(corpus, analyzer)) {
    return;
  }
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  if (!with_faults) options.fault_plan.reset();
  options.threads = threads;
  options.trace = trace;
  options.policy = policy;
  if (extra != nullptr) options.extra_extensions.push_back(extra);
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "%") {
  std::printf("  %-46s paper %7.1f%-2s  measured %7.1f%-2s\n", label, paper,
              unit, measured, unit);
}

}  // namespace cg::bench
