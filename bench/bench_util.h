// Shared helpers for the experiment-reproduction binaries.
//
// Every bench crawls the synthetic corpus (default: the paper's 20,000
// sites; override with CG_SITES=<n> for quick runs) and prints the same
// rows/series as the corresponding paper table or figure, with the paper's
// reported value alongside for comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"

namespace cg::bench {

inline int corpus_sites_from_env(int fallback = 20000) {
  if (const char* env = std::getenv("CG_SITES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

inline corpus::CorpusParams default_params() {
  corpus::CorpusParams params;
  params.site_count = corpus_sites_from_env();
  return params;
}

inline void print_header(const char* title, const corpus::Corpus& corpus) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("corpus: %d sites, seed 0x%llX, %zu catalog scripts\n",
              corpus.size(),
              static_cast<unsigned long long>(corpus.params().seed),
              corpus.catalog().size());
  std::printf("================================================================\n");
}

/// Runs the measurement crawl (no enforcement) into `analyzer`.
inline void run_measurement_crawl(const corpus::Corpus& corpus,
                                  analysis::Analyzer& analyzer,
                                  browser::Extension* extra = nullptr,
                                  bool simulate_log_loss = true) {
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.simulate_log_loss = simulate_log_loss;
  if (extra != nullptr) options.extra_extensions.push_back(extra);
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "%") {
  std::printf("  %-46s paper %7.1f%-2s  measured %7.1f%-2s\n", label, paper,
              unit, measured, unit);
}

}  // namespace cg::bench
