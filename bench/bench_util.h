// Shared helpers for the experiment-reproduction binaries.
//
// Every bench crawls the synthetic corpus (default: the paper's 20,000
// sites; override with CG_SITES=<n> for quick runs) and prints the same
// rows/series as the corresponding paper table or figure, with the paper's
// reported value alongside for comparison.
//
// Crawls shard across worker threads (`--threads N` argument, CG_THREADS
// env, default: all hardware threads) — byte-identical output at any
// thread count, see src/runtime/.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "runtime/thread_pool.h"

namespace cg::bench {

inline int corpus_sites_from_env(int fallback = 20000) {
  if (const char* env = std::getenv("CG_SITES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

inline corpus::CorpusParams default_params() {
  corpus::CorpusParams params;
  params.site_count = corpus_sites_from_env();
  return params;
}

/// Worker threads for the measurement crawl: `--threads N` wins, then
/// CG_THREADS=<n>, else every hardware thread.
inline int threads_from_args(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
  }
  if (const char* env = std::getenv("CG_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return runtime::ThreadPool::hardware_threads();
}

inline void print_header(const char* title, const corpus::Corpus& corpus,
                         int threads = 1) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("corpus: %d sites, seed 0x%llX, %zu catalog scripts"
              ", %d crawl thread%s\n",
              corpus.size(),
              static_cast<unsigned long long>(corpus.params().seed),
              corpus.catalog().size(), threads, threads == 1 ? "" : "s");
  std::printf("================================================================\n");
}

/// Runs the measurement crawl (no enforcement) into `analyzer`. A non-null
/// `extra` extension forces a sequential crawl (shared instance); benches
/// that want an extension at N threads use CrawlOptions::extension_factory
/// directly.
inline void run_measurement_crawl(const corpus::Corpus& corpus,
                                  analysis::Analyzer& analyzer,
                                  browser::Extension* extra = nullptr,
                                  bool with_faults = true, int threads = 1) {
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  if (!with_faults) options.fault_plan.reset();
  options.threads = threads;
  if (extra != nullptr) options.extra_extensions.push_back(extra);
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "%") {
  std::printf("  %-46s paper %7.1f%-2s  measured %7.1f%-2s\n", label, paper,
              unit, measured, unit);
}

}  // namespace cg::bench
