// Ablation benches for the design choices called out in DESIGN.md:
//   D1 — attribution mode (last-external + async stacks vs top-frame-only,
//        and async stack traces off): attribution accuracy of script sets.
//   D2 — site-owner full access vs strict isolation: residual cross-domain
//        actions under CookieGuard.
//   D3 — inline scripts denied vs treated as first party.
//   D5 — identifier matching with encodings vs raw-only: how many
//        exfiltration flows the detector would miss.
#include "cookieguard/cookieguard.h"

#include <memory>
#include <vector>

#include "bench_util.h"

namespace {

using namespace cg;

struct CrawlStats {
  double exfil_sites = 0, over_sites = 0, del_sites = 0;
  double attribution_accuracy = 0, attribution_unknown = 0;
  int exfil_pairs = 0;
};

CrawlStats run(const corpus::Corpus& corpus,
               const cookieguard::CookieGuardConfig* guard_config,
               ext::AttributionMode attribution,
               bool async_stacks,
               int threads) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;
  options.fault_plan.reset();
  options.attribution = attribution;
  options.browser_config.async_stack_traces = async_stacks;
  options.threads = threads;
  // Per-worker guard instances so the enforcement crawls shard too.
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  if (guard_config != nullptr) {
    for (int i = 0; i < threads; ++i) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>(*guard_config));
    }
    options.extension_factory = [&guards](int worker) {
      return std::vector<browser::Extension*>{
          guards[static_cast<std::size_t>(worker)].get()};
    };
  }
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
  const auto& t = analyzer.totals();
  const double n = t.sites_complete;
  CrawlStats out;
  out.exfil_sites = 100.0 * t.sites_doc_exfil / n;
  out.over_sites = 100.0 * t.sites_doc_overwrite / n;
  out.del_sites = 100.0 * t.sites_doc_delete / n;
  out.attribution_accuracy =
      t.attributed_sets > 0
          ? 100.0 * t.attribution_correct / t.attributed_sets
          : 0;
  out.attribution_unknown =
      t.attributed_sets > 0
          ? 100.0 * t.attribution_unknown / t.attributed_sets
          : 0;
  out.exfil_pairs =
      analyzer.exfiltrated_pair_count(cookies::CookieSource::kDocumentCookie);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  corpus::Corpus corpus(cg::bench::default_params());
  const int threads = cg::bench::threads_from_args(argc, argv);
  cg::bench::print_header("Ablations — DESIGN.md D1/D2/D3/D5 design knobs",
                          corpus, threads);

  // ---- D1: attribution ---------------------------------------------------
  std::printf("\n-- D1: stack-trace attribution of cookie writes --\n");
  {
    const auto last_ext = run(corpus, nullptr,
                              ext::AttributionMode::kLastExternal, true,
                              threads);
    const auto no_async = run(corpus, nullptr,
                              ext::AttributionMode::kLastExternal, false,
                              threads);
    const auto top_only = run(corpus, nullptr,
                              ext::AttributionMode::kTopFrameOnly, true,
                              threads);
    std::printf("  %-44s accuracy %5.1f%%  unknown %5.1f%%\n",
                "last-external + async stack traces (paper)",
                last_ext.attribution_accuracy, last_ext.attribution_unknown);
    std::printf("  %-44s accuracy %5.1f%%  unknown %5.1f%%\n",
                "last-external, async stacks disabled",
                no_async.attribution_accuracy, no_async.attribution_unknown);
    std::printf("  %-44s accuracy %5.1f%%  unknown %5.1f%%\n",
                "top-frame-only (naive)", top_only.attribution_accuracy,
                top_only.attribution_unknown);
  }

  // ---- D2 / D3: CookieGuard policy knobs --------------------------------
  std::printf("\n-- D2/D3: CookieGuard policy (residual cross-domain sites, "
              "%%) --\n");
  {
    const cookieguard::CookieGuardConfig paper_cfg{};  // owner access + inline deny
    const auto with_owner = run(corpus, &paper_cfg,
                                ext::AttributionMode::kLastExternal, true,
                                threads);

    cookieguard::CookieGuardConfig strict_cfg;
    strict_cfg.site_owner_full_access = false;
    const auto strict = run(corpus, &strict_cfg,
                            ext::AttributionMode::kLastExternal, true,
                            threads);

    cookieguard::CookieGuardConfig inline_cfg;
    inline_cfg.deny_inline_scripts = false;
    const auto inline_fp = run(corpus, &inline_cfg,
                               ext::AttributionMode::kLastExternal, true,
                               threads);

    std::printf("  %-40s exfil %5.1f  overwrite %5.1f  delete %5.1f\n",
                "paper policy (owner access, inline deny)",
                with_owner.exfil_sites, with_owner.over_sites,
                with_owner.del_sites);
    std::printf("  %-40s exfil %5.1f  overwrite %5.1f  delete %5.1f\n",
                "strict isolation (no owner access)", strict.exfil_sites,
                strict.over_sites, strict.del_sites);
    std::printf("  %-40s exfil %5.1f  overwrite %5.1f  delete %5.1f\n",
                "inline scripts treated as first party",
                inline_fp.exfil_sites, inline_fp.over_sites,
                inline_fp.del_sites);
  }

  // ---- D5: encoded identifier matching -----------------------------------
  std::printf("\n-- D5: exfiltration detector encodings --\n");
  {
    analysis::Analyzer full(corpus.entities());
    analysis::Analyzer raw_only(corpus.entities(),
                                {.match_encoded_identifiers = false});
    crawler::Crawler crawler(corpus);
    crawler::CrawlOptions options;
    options.fault_plan.reset();
    options.threads = threads;
    crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
      full.ingest(log);
      raw_only.ingest(log);
    });
    const int full_pairs = full.exfiltrated_pair_count(
        cookies::CookieSource::kDocumentCookie);
    const int raw_pairs = raw_only.exfiltrated_pair_count(
        cookies::CookieSource::kDocumentCookie);
    const auto& ft = full.totals();
    const auto& rt = raw_only.totals();
    std::printf("  %-44s pairs %5d  sites %5.1f%%\n",
                "raw + Base64 + MD5 + SHA1 (paper)", full_pairs,
                100.0 * ft.sites_doc_exfil / ft.sites_complete);
    std::printf("  %-44s pairs %5d  sites %5.1f%%\n", "raw matching only",
                raw_pairs, 100.0 * rt.sites_doc_exfil / rt.sites_complete);
    std::printf("  encoded-only flows missed by the raw detector: %d pairs "
                "(LinkedIn-style Base64,\n  hashed sync pixels)\n",
                full_pairs - raw_pairs);
  }
  std::printf("\n");
  return 0;
}
