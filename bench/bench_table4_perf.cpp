// Reproduces Table 4: page-load performance with and without CookieGuard.
//
// Two parts:
//   1. google-benchmark microbenchmarks of the real interception primitives
//     (stack attribution, metadata lookup, read filtering, message-bus round
//     trip) — the physical cost CookieGuard adds per intercepted call;
//   2. the paired page-load simulation over the corpus, reporting the same
//     mean/median rows as the paper:
//        DOM Content Loaded  1659/946 ms  ->  1896/1020 ms
//        DOM Interactive     1464/842 ms  ->  1702/911  ms
//        Load Event          3197/2008 ms ->  3635/2136 ms   (~ +0.3 s mean)
#include <benchmark/benchmark.h>

#include "browser/page.h"
#include "cookieguard/cookieguard.h"
#include "ext/attribution.h"
#include "perf/perf.h"

#include "bench_util.h"

namespace {

using namespace cg;

webplat::StackTrace deep_stack() {
  webplat::StackTrace stack;
  stack.push({"https://www.site1.com/assets/app.js", "boot", false});
  stack.push({"https://www.googletagmanager.com/gtm.js", "inject", false});
  stack.push({"https://cdn.tracker.com/t.js", "fire", true});
  stack.push({"", "anonymous", false});
  return stack;
}

void BM_StackAttribution(benchmark::State& state) {
  const auto stack = deep_stack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext::attribute_stack(stack));
  }
}
BENCHMARK(BM_StackAttribution);

void BM_MetadataLookup(benchmark::State& state) {
  cookieguard::MetadataStore store;
  for (int i = 0; i < 40; ++i) {
    store.record("cookie_" + std::to_string(i), "vendor.com");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.creator("cookie_17"));
  }
}
BENCHMARK(BM_MetadataLookup);

void BM_MetadataSnapshot(benchmark::State& state) {
  cookieguard::MetadataStore store;
  for (int i = 0; i < 40; ++i) {
    store.record("cookie_" + std::to_string(i), "vendor.com");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot());
  }
}
BENCHMARK(BM_MetadataSnapshot);

void BM_MessageBusRoundTrip(benchmark::State& state) {
  ext::MessageBus bus;
  bus.register_handler("lookup",
                       [](const std::string&) { return std::string("x"); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.request("lookup", "_ga"));
  }
}
BENCHMARK(BM_MessageBusRoundTrip);

void BM_JarSerialization(benchmark::State& state) {
  cookies::CookieJar jar;
  const auto url = net::Url::must_parse("https://www.site1.com/");
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    // Append, not chained operator+: GCC 12 -Wrestrict FP (PR 105329).
    std::string line = "c";
    line += std::to_string(i);
    line += "=v";
    line += std::to_string(i);
    line += "; Path=/";
    jar.set_from_string(url, line, 1746748800000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(jar.document_cookie_string(url, 1746748800000));
  }
}
BENCHMARK(BM_JarSerialization)->Arg(8)->Arg(32);

void BM_GuardedReadFilter(benchmark::State& state) {
  // End-to-end cost of one guarded document.cookie read on a realistic page.
  browser::Browser browser({}, 1);
  browser::ScriptCatalog catalog;
  browser.set_catalog(&catalog);
  browser.set_document_provider(
      [](const net::Url&) { return browser::DocumentSpec{}; });
  cookieguard::CookieGuard guard;
  browser.add_extension(&guard);
  auto page = browser.navigate(net::Url::must_parse("https://www.site1.com/"));
  script::ExecContext tracker;
  tracker.script_url = "https://cdn.tracker.com/t.js";
  tracker.script_domain = "tracker.com";
  page->run_as(tracker, [&](script::PageServices& services) {
    for (int i = 0; i < 30; ++i) {
      std::string line = "c";
      line += std::to_string(i);
      line += "=val";
      line += std::to_string(i);
      line += "0123456789; Path=/";
      services.document_cookie_write(tracker, line);
    }
  });
  script::ExecContext reader;
  reader.script_url = "https://other.vendor.com/v.js";
  reader.script_domain = "vendor.com";
  for (auto _ : state) {
    page->run_as(reader, [&](script::PageServices& services) {
      benchmark::DoNotOptimize(services.document_cookie_read(reader));
    });
  }
}
BENCHMARK(BM_GuardedReadFilter);

void print_metric(const char* name, double paper_mean_n, double paper_med_n,
                  double paper_mean_g, double paper_med_g,
                  const perf::TimingSummary& normal,
                  const perf::TimingSummary& guarded) {
  std::printf("  %-20s | %7.0f / %-7.0f (paper %4.0f/%-4.0f) | %7.0f / %-7.0f"
              " (paper %4.0f/%-4.0f)\n",
              name, normal.mean_ms, double(normal.median_ms), paper_mean_n,
              paper_med_n, guarded.mean_ms, double(guarded.median_ms),
              paper_mean_g, paper_med_g);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("-- interception primitive microbenchmarks --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  corpus::Corpus corpus(bench::default_params());
  bench::print_header("Table 4 — page-load performance (mean / median ms)",
                      corpus);

  const auto comparison =
      perf::compare_page_load(corpus, corpus.size(), {});

  std::printf("\n  %-20s | %-38s | %s\n", "metric", "Normal",
              "CookieGuard");
  std::printf("  %s\n", std::string(100, '-').c_str());
  print_metric("DOM Content Loaded", 1659, 946, 1896, 1020,
               comparison.normal.dom_content_loaded,
               comparison.guarded.dom_content_loaded);
  print_metric("DOM Interactive", 1464, 842, 1702, 911,
               comparison.normal.dom_interactive,
               comparison.guarded.dom_interactive);
  print_metric("Load Event", 3197, 2008, 3635, 2136,
               comparison.normal.load_event, comparison.guarded.load_event);
  std::printf("\n  mean overhead on load event: %.0f ms (paper: ~300 ms "
              "average overhead)\n\n",
              comparison.mean_overhead_ms);
  return 0;
}
