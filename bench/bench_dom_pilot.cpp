// Reproduces the §8 pilot study: cross-domain DOM modification.
//
// Paper: scripts modify, insert, or remove DOM elements they do not own on
// 9.4% of sites.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header("§8 pilot — cross-domain DOM modification", corpus, threads);

  analysis::Analyzer analyzer(corpus.entities());
  bench::run_measurement_crawl(corpus, analyzer, nullptr,
                               /*with_faults=*/true, threads, nullptr,
                               bench::policy_from_args(argc, argv));

  const auto& t = analyzer.totals();
  bench::print_row("sites with cross-domain DOM modification", 9.4,
                   100.0 * t.sites_with_cross_dom_modification /
                       t.sites_complete);
  std::printf("\n");
  return 0;
}
