// Reproduces Figure 5: cross-domain cookie interactions with and without
// the CookieGuard extension (paired crawl over the same corpus).
//
// Paper: CookieGuard reduces cross-domain overwriting by 82.2%, deletion by
// 86.2%, and exfiltration by 83.2%. The residual comes from the site-owner
// full-access policy (§6.1) — site scripts proxying identifiers (server-side
// GTM, §5.7) and first-party cleanup/rewrite scripts.
#include "cookieguard/cookieguard.h"

#include <memory>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_header(
      "Figure 5 — cross-domain actions, regular browser vs CookieGuard",
      corpus, threads);

  analysis::Analyzer baseline(corpus.entities());
  bench::run_measurement_crawl(corpus, baseline, nullptr,
                               /*with_faults=*/false, threads);

  // Each shard worker enforces with its own CookieGuard instance
  // (enforcement is per-visit deterministic); the counters are summed into
  // one crawl-wide tally afterwards.
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  for (int i = 0; i < threads; ++i) {
    guards.push_back(std::make_unique<cookieguard::CookieGuard>());
  }
  analysis::Analyzer guarded(corpus.entities());
  {
    crawler::Crawler crawler(corpus);
    crawler::CrawlOptions options;
    options.fault_plan.reset();
    options.threads = threads;
    options.extension_factory = [&guards](int worker) {
      return std::vector<browser::Extension*>{
          guards[static_cast<std::size_t>(worker)].get()};
    };
    crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
      guarded.ingest(log);
    });
  }
  cookieguard::CookieGuard::Stats guard_stats;
  for (const auto& guard : guards) guard_stats.merge(guard->stats());

  const auto& b = baseline.totals();
  const auto& g = guarded.totals();
  const double nb = b.sites_complete;
  const double ng = g.sites_complete;

  struct Row {
    const char* action;
    double paper_reduction;
    double without, with;
  };
  const Row rows[] = {
      {"exfiltration", 83.2, 100.0 * b.sites_doc_exfil / nb,
       100.0 * g.sites_doc_exfil / ng},
      {"overwriting", 82.2, 100.0 * b.sites_doc_overwrite / nb,
       100.0 * g.sites_doc_overwrite / ng},
      {"deleting", 86.2, 100.0 * b.sites_doc_delete / nb,
       100.0 * g.sites_doc_delete / ng},
  };

  std::printf("\n  %-14s | %% sites w/o ext | %% sites w/ ext | reduction "
              "(paper)\n", "action");
  std::printf("  %s\n", std::string(66, '-').c_str());
  for (const auto& row : rows) {
    const double reduction =
        row.without > 0 ? 100.0 * (1.0 - row.with / row.without) : 0.0;
    std::printf("  %-14s |     %6.1f      |     %6.1f     |  %5.1f%% "
                "(%.1f%%)\n",
                row.action, row.without, row.with, reduction,
                row.paper_reduction);
  }

  std::printf("\n  enforcement stats: %llu cookies hidden from reads, "
              "%llu cross-domain writes blocked,\n  %llu inline accesses "
              "denied\n\n",
              static_cast<unsigned long long>(guard_stats.cookies_hidden),
              static_cast<unsigned long long>(guard_stats.writes_blocked),
              static_cast<unsigned long long>(guard_stats.inline_denied));
  return 0;
}
