// Reproduces Figure 5: cross-domain cookie interactions with and without
// the CookieGuard extension (paired crawl over the same corpus).
//
// Paper: CookieGuard reduces cross-domain overwriting by 82.2%, deletion by
// 86.2%, and exfiltration by 83.2%. The residual comes from the site-owner
// full-access policy (§6.1) — site scripts proxying identifiers (server-side
// GTM, §5.7) and first-party cleanup/rewrite scripts.
#include "cookieguard/cookieguard.h"

#include "bench_util.h"

int main() {
  using namespace cg;
  corpus::Corpus corpus(bench::default_params());
  bench::print_header(
      "Figure 5 — cross-domain actions, regular browser vs CookieGuard",
      corpus);

  analysis::Analyzer baseline(corpus.entities());
  bench::run_measurement_crawl(corpus, baseline, nullptr,
                               /*simulate_log_loss=*/false);

  cookieguard::CookieGuard guard;
  analysis::Analyzer guarded(corpus.entities());
  bench::run_measurement_crawl(corpus, guarded, &guard,
                               /*simulate_log_loss=*/false);

  const auto& b = baseline.totals();
  const auto& g = guarded.totals();
  const double nb = b.sites_complete;
  const double ng = g.sites_complete;

  struct Row {
    const char* action;
    double paper_reduction;
    double without, with;
  };
  const Row rows[] = {
      {"exfiltration", 83.2, 100.0 * b.sites_doc_exfil / nb,
       100.0 * g.sites_doc_exfil / ng},
      {"overwriting", 82.2, 100.0 * b.sites_doc_overwrite / nb,
       100.0 * g.sites_doc_overwrite / ng},
      {"deleting", 86.2, 100.0 * b.sites_doc_delete / nb,
       100.0 * g.sites_doc_delete / ng},
  };

  std::printf("\n  %-14s | %% sites w/o ext | %% sites w/ ext | reduction "
              "(paper)\n", "action");
  std::printf("  %s\n", std::string(66, '-').c_str());
  for (const auto& row : rows) {
    const double reduction =
        row.without > 0 ? 100.0 * (1.0 - row.with / row.without) : 0.0;
    std::printf("  %-14s |     %6.1f      |     %6.1f     |  %5.1f%% "
                "(%.1f%%)\n",
                row.action, row.without, row.with, reduction,
                row.paper_reduction);
  }

  std::printf("\n  enforcement stats: %llu cookies hidden from reads, "
              "%llu cross-domain writes blocked,\n  %llu inline accesses "
              "denied\n\n",
              static_cast<unsigned long long>(guard.stats().cookies_hidden),
              static_cast<unsigned long long>(guard.stats().writes_blocked),
              static_cast<unsigned long long>(guard.stats().inline_denied));
  return 0;
}
