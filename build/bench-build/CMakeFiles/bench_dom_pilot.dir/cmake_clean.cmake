file(REMOVE_RECURSE
  "../bench/bench_dom_pilot"
  "../bench/bench_dom_pilot.pdb"
  "CMakeFiles/bench_dom_pilot.dir/bench_dom_pilot.cpp.o"
  "CMakeFiles/bench_dom_pilot.dir/bench_dom_pilot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dom_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
