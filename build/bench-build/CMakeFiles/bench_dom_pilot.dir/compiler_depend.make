# Empty compiler generated dependencies file for bench_dom_pilot.
# This may be replaced when dependencies are built.
