# Empty dependencies file for bench_prevalence.
# This may be replaced when dependencies are built.
