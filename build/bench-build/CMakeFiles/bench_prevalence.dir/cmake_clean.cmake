file(REMOVE_RECURSE
  "../bench/bench_prevalence"
  "../bench/bench_prevalence.pdb"
  "CMakeFiles/bench_prevalence.dir/bench_prevalence.cpp.o"
  "CMakeFiles/bench_prevalence.dir/bench_prevalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
