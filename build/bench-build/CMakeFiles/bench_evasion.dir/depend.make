# Empty dependencies file for bench_evasion.
# This may be replaced when dependencies are built.
