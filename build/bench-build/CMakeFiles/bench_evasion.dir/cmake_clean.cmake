file(REMOVE_RECURSE
  "../bench/bench_evasion"
  "../bench/bench_evasion.pdb"
  "CMakeFiles/bench_evasion.dir/bench_evasion.cpp.o"
  "CMakeFiles/bench_evasion.dir/bench_evasion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
