file(REMOVE_RECURSE
  "../bench/bench_api_usage"
  "../bench/bench_api_usage.pdb"
  "CMakeFiles/bench_api_usage.dir/bench_api_usage.cpp.o"
  "CMakeFiles/bench_api_usage.dir/bench_api_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_api_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
