# Empty compiler generated dependencies file for bench_api_usage.
# This may be replaced when dependencies are built.
