file(REMOVE_RECURSE
  "../bench/bench_table3_breakage"
  "../bench/bench_table3_breakage.pdb"
  "CMakeFiles/bench_table3_breakage.dir/bench_table3_breakage.cpp.o"
  "CMakeFiles/bench_table3_breakage.dir/bench_table3_breakage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_breakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
