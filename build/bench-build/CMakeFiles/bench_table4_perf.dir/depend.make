# Empty dependencies file for bench_table4_perf.
# This may be replaced when dependencies are built.
