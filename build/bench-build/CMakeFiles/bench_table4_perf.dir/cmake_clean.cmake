file(REMOVE_RECURSE
  "../bench/bench_table4_perf"
  "../bench/bench_table4_perf.pdb"
  "CMakeFiles/bench_table4_perf.dir/bench_table4_perf.cpp.o"
  "CMakeFiles/bench_table4_perf.dir/bench_table4_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
