# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/cookies_test[1]_include.cmake")
include("/root/repo/build/tests/webplat_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/browser_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/entities_test[1]_include.cmake")
include("/root/repo/build/tests/cookieguard_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/crawler_test[1]_include.cmake")
include("/root/repo/build/tests/breakage_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/figure3_test[1]_include.cmake")
