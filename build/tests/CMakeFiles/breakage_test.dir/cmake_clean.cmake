file(REMOVE_RECURSE
  "CMakeFiles/breakage_test.dir/breakage_test.cpp.o"
  "CMakeFiles/breakage_test.dir/breakage_test.cpp.o.d"
  "breakage_test"
  "breakage_test.pdb"
  "breakage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
