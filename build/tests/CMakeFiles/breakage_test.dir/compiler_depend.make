# Empty compiler generated dependencies file for breakage_test.
# This may be replaced when dependencies are built.
