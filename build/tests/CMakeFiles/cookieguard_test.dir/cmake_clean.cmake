file(REMOVE_RECURSE
  "CMakeFiles/cookieguard_test.dir/cookieguard_test.cpp.o"
  "CMakeFiles/cookieguard_test.dir/cookieguard_test.cpp.o.d"
  "cookieguard_test"
  "cookieguard_test.pdb"
  "cookieguard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cookieguard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
