# Empty compiler generated dependencies file for cookieguard_test.
# This may be replaced when dependencies are built.
