file(REMOVE_RECURSE
  "CMakeFiles/entities_test.dir/entities_test.cpp.o"
  "CMakeFiles/entities_test.dir/entities_test.cpp.o.d"
  "entities_test"
  "entities_test.pdb"
  "entities_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
