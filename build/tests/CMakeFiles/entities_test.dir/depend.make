# Empty dependencies file for entities_test.
# This may be replaced when dependencies are built.
