file(REMOVE_RECURSE
  "CMakeFiles/webplat_test.dir/webplat_test.cpp.o"
  "CMakeFiles/webplat_test.dir/webplat_test.cpp.o.d"
  "webplat_test"
  "webplat_test.pdb"
  "webplat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webplat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
