# Empty dependencies file for webplat_test.
# This may be replaced when dependencies are built.
