# Empty dependencies file for cookies_test.
# This may be replaced when dependencies are built.
