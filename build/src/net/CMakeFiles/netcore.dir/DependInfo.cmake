
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/netcore.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/dns.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/net/CMakeFiles/netcore.dir/http.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/http.cpp.o.d"
  "/root/repo/src/net/http_date.cpp" "src/net/CMakeFiles/netcore.dir/http_date.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/http_date.cpp.o.d"
  "/root/repo/src/net/percent.cpp" "src/net/CMakeFiles/netcore.dir/percent.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/percent.cpp.o.d"
  "/root/repo/src/net/psl.cpp" "src/net/CMakeFiles/netcore.dir/psl.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/psl.cpp.o.d"
  "/root/repo/src/net/query.cpp" "src/net/CMakeFiles/netcore.dir/query.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/query.cpp.o.d"
  "/root/repo/src/net/set_cookie.cpp" "src/net/CMakeFiles/netcore.dir/set_cookie.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/set_cookie.cpp.o.d"
  "/root/repo/src/net/url.cpp" "src/net/CMakeFiles/netcore.dir/url.cpp.o" "gcc" "src/net/CMakeFiles/netcore.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
