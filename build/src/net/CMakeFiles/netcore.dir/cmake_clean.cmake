file(REMOVE_RECURSE
  "CMakeFiles/netcore.dir/dns.cpp.o"
  "CMakeFiles/netcore.dir/dns.cpp.o.d"
  "CMakeFiles/netcore.dir/http.cpp.o"
  "CMakeFiles/netcore.dir/http.cpp.o.d"
  "CMakeFiles/netcore.dir/http_date.cpp.o"
  "CMakeFiles/netcore.dir/http_date.cpp.o.d"
  "CMakeFiles/netcore.dir/percent.cpp.o"
  "CMakeFiles/netcore.dir/percent.cpp.o.d"
  "CMakeFiles/netcore.dir/psl.cpp.o"
  "CMakeFiles/netcore.dir/psl.cpp.o.d"
  "CMakeFiles/netcore.dir/query.cpp.o"
  "CMakeFiles/netcore.dir/query.cpp.o.d"
  "CMakeFiles/netcore.dir/set_cookie.cpp.o"
  "CMakeFiles/netcore.dir/set_cookie.cpp.o.d"
  "CMakeFiles/netcore.dir/url.cpp.o"
  "CMakeFiles/netcore.dir/url.cpp.o.d"
  "libnetcore.a"
  "libnetcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
