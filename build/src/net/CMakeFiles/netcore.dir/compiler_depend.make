# Empty compiler generated dependencies file for netcore.
# This may be replaced when dependencies are built.
