file(REMOVE_RECURSE
  "libnetcore.a"
)
