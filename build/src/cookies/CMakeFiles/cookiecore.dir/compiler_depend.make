# Empty compiler generated dependencies file for cookiecore.
# This may be replaced when dependencies are built.
