file(REMOVE_RECURSE
  "libcookiecore.a"
)
