file(REMOVE_RECURSE
  "CMakeFiles/cookiecore.dir/cookie_jar.cpp.o"
  "CMakeFiles/cookiecore.dir/cookie_jar.cpp.o.d"
  "libcookiecore.a"
  "libcookiecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cookiecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
