# Empty dependencies file for scriptengine.
# This may be replaced when dependencies are built.
