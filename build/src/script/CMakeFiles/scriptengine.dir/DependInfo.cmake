
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/exec_context.cpp" "src/script/CMakeFiles/scriptengine.dir/exec_context.cpp.o" "gcc" "src/script/CMakeFiles/scriptengine.dir/exec_context.cpp.o.d"
  "/root/repo/src/script/interpreter.cpp" "src/script/CMakeFiles/scriptengine.dir/interpreter.cpp.o" "gcc" "src/script/CMakeFiles/scriptengine.dir/interpreter.cpp.o.d"
  "/root/repo/src/script/ops.cpp" "src/script/CMakeFiles/scriptengine.dir/ops.cpp.o" "gcc" "src/script/CMakeFiles/scriptengine.dir/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptocore.dir/DependInfo.cmake"
  "/root/repo/build/src/webplat/CMakeFiles/webplat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
