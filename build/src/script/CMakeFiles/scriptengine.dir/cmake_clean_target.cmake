file(REMOVE_RECURSE
  "libscriptengine.a"
)
