file(REMOVE_RECURSE
  "CMakeFiles/scriptengine.dir/exec_context.cpp.o"
  "CMakeFiles/scriptengine.dir/exec_context.cpp.o.d"
  "CMakeFiles/scriptengine.dir/interpreter.cpp.o"
  "CMakeFiles/scriptengine.dir/interpreter.cpp.o.d"
  "CMakeFiles/scriptengine.dir/ops.cpp.o"
  "CMakeFiles/scriptengine.dir/ops.cpp.o.d"
  "libscriptengine.a"
  "libscriptengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scriptengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
