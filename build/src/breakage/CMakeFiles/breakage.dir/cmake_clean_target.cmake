file(REMOVE_RECURSE
  "libbreakage.a"
)
