file(REMOVE_RECURSE
  "CMakeFiles/breakage.dir/breakage.cpp.o"
  "CMakeFiles/breakage.dir/breakage.cpp.o.d"
  "libbreakage.a"
  "libbreakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
