# Empty dependencies file for breakage.
# This may be replaced when dependencies are built.
