file(REMOVE_RECURSE
  "CMakeFiles/corpus.dir/corpus.cpp.o"
  "CMakeFiles/corpus.dir/corpus.cpp.o.d"
  "CMakeFiles/corpus.dir/ecosystem.cpp.o"
  "CMakeFiles/corpus.dir/ecosystem.cpp.o.d"
  "CMakeFiles/corpus.dir/site_generator.cpp.o"
  "CMakeFiles/corpus.dir/site_generator.cpp.o.d"
  "libcorpus.a"
  "libcorpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
