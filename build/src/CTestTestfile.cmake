# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("net")
subdirs("crypto")
subdirs("cookies")
subdirs("webplat")
subdirs("script")
subdirs("browser")
subdirs("ext")
subdirs("instrument")
subdirs("entities")
subdirs("corpus")
subdirs("crawler")
subdirs("analysis")
subdirs("cookieguard")
subdirs("baselines")
subdirs("breakage")
subdirs("perf")
subdirs("report")
