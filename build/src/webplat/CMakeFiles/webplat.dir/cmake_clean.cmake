file(REMOVE_RECURSE
  "CMakeFiles/webplat.dir/dom.cpp.o"
  "CMakeFiles/webplat.dir/dom.cpp.o.d"
  "CMakeFiles/webplat.dir/event_loop.cpp.o"
  "CMakeFiles/webplat.dir/event_loop.cpp.o.d"
  "libwebplat.a"
  "libwebplat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webplat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
