# Empty compiler generated dependencies file for webplat.
# This may be replaced when dependencies are built.
