file(REMOVE_RECURSE
  "libwebplat.a"
)
