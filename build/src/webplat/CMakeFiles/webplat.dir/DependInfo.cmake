
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webplat/dom.cpp" "src/webplat/CMakeFiles/webplat.dir/dom.cpp.o" "gcc" "src/webplat/CMakeFiles/webplat.dir/dom.cpp.o.d"
  "/root/repo/src/webplat/event_loop.cpp" "src/webplat/CMakeFiles/webplat.dir/event_loop.cpp.o" "gcc" "src/webplat/CMakeFiles/webplat.dir/event_loop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
