file(REMOVE_RECURSE
  "CMakeFiles/analysis.dir/analyzer.cpp.o"
  "CMakeFiles/analysis.dir/analyzer.cpp.o.d"
  "libanalysis.a"
  "libanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
