# CMake generated Testfile for 
# Source directory: /root/repo/src/entities
# Build directory: /root/repo/build/src/entities
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
