file(REMOVE_RECURSE
  "CMakeFiles/entities.dir/entity_map.cpp.o"
  "CMakeFiles/entities.dir/entity_map.cpp.o.d"
  "libentities.a"
  "libentities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
