# Empty dependencies file for entities.
# This may be replaced when dependencies are built.
