file(REMOVE_RECURSE
  "libentities.a"
)
