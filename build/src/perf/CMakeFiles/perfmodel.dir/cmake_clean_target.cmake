file(REMOVE_RECURSE
  "libperfmodel.a"
)
