# Empty compiler generated dependencies file for perfmodel.
# This may be replaced when dependencies are built.
