file(REMOVE_RECURSE
  "CMakeFiles/perfmodel.dir/perf.cpp.o"
  "CMakeFiles/perfmodel.dir/perf.cpp.o.d"
  "libperfmodel.a"
  "libperfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
