# Empty dependencies file for cookieguard.
# This may be replaced when dependencies are built.
