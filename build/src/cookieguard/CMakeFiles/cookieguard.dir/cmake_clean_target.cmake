file(REMOVE_RECURSE
  "libcookieguard.a"
)
