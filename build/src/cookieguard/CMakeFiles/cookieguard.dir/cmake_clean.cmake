file(REMOVE_RECURSE
  "CMakeFiles/cookieguard.dir/cookieguard.cpp.o"
  "CMakeFiles/cookieguard.dir/cookieguard.cpp.o.d"
  "CMakeFiles/cookieguard.dir/signatures.cpp.o"
  "CMakeFiles/cookieguard.dir/signatures.cpp.o.d"
  "libcookieguard.a"
  "libcookieguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cookieguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
