file(REMOVE_RECURSE
  "CMakeFiles/crawler.dir/crawler.cpp.o"
  "CMakeFiles/crawler.dir/crawler.cpp.o.d"
  "libcrawler.a"
  "libcrawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
