file(REMOVE_RECURSE
  "libcrawler.a"
)
