# Empty dependencies file for crawler.
# This may be replaced when dependencies are built.
