file(REMOVE_RECURSE
  "CMakeFiles/instrument.dir/recorder.cpp.o"
  "CMakeFiles/instrument.dir/recorder.cpp.o.d"
  "libinstrument.a"
  "libinstrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
