# Empty dependencies file for instrument.
# This may be replaced when dependencies are built.
