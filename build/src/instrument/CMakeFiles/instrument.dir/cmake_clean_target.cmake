file(REMOVE_RECURSE
  "libinstrument.a"
)
