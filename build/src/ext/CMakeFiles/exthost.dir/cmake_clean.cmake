file(REMOVE_RECURSE
  "CMakeFiles/exthost.dir/attribution.cpp.o"
  "CMakeFiles/exthost.dir/attribution.cpp.o.d"
  "libexthost.a"
  "libexthost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exthost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
