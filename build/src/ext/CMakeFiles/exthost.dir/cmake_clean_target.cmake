file(REMOVE_RECURSE
  "libexthost.a"
)
