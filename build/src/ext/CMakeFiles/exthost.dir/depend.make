# Empty dependencies file for exthost.
# This may be replaced when dependencies are built.
