# Empty compiler generated dependencies file for cryptocore.
# This may be replaced when dependencies are built.
