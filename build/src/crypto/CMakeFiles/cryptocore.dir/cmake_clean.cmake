file(REMOVE_RECURSE
  "CMakeFiles/cryptocore.dir/base64.cpp.o"
  "CMakeFiles/cryptocore.dir/base64.cpp.o.d"
  "CMakeFiles/cryptocore.dir/hex.cpp.o"
  "CMakeFiles/cryptocore.dir/hex.cpp.o.d"
  "CMakeFiles/cryptocore.dir/md5.cpp.o"
  "CMakeFiles/cryptocore.dir/md5.cpp.o.d"
  "CMakeFiles/cryptocore.dir/sha1.cpp.o"
  "CMakeFiles/cryptocore.dir/sha1.cpp.o.d"
  "libcryptocore.a"
  "libcryptocore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptocore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
