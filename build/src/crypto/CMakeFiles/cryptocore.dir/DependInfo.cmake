
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/base64.cpp" "src/crypto/CMakeFiles/cryptocore.dir/base64.cpp.o" "gcc" "src/crypto/CMakeFiles/cryptocore.dir/base64.cpp.o.d"
  "/root/repo/src/crypto/hex.cpp" "src/crypto/CMakeFiles/cryptocore.dir/hex.cpp.o" "gcc" "src/crypto/CMakeFiles/cryptocore.dir/hex.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/crypto/CMakeFiles/cryptocore.dir/md5.cpp.o" "gcc" "src/crypto/CMakeFiles/cryptocore.dir/md5.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/cryptocore.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/cryptocore.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
