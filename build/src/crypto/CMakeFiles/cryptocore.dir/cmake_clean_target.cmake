file(REMOVE_RECURSE
  "libcryptocore.a"
)
