file(REMOVE_RECURSE
  "libbrowsercore.a"
)
