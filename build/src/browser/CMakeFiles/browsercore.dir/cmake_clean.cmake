file(REMOVE_RECURSE
  "CMakeFiles/browsercore.dir/browser.cpp.o"
  "CMakeFiles/browsercore.dir/browser.cpp.o.d"
  "CMakeFiles/browsercore.dir/network.cpp.o"
  "CMakeFiles/browsercore.dir/network.cpp.o.d"
  "CMakeFiles/browsercore.dir/page.cpp.o"
  "CMakeFiles/browsercore.dir/page.cpp.o.d"
  "libbrowsercore.a"
  "libbrowsercore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browsercore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
