# Empty dependencies file for browsercore.
# This may be replaced when dependencies are built.
