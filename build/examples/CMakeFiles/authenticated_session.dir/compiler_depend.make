# Empty compiler generated dependencies file for authenticated_session.
# This may be replaced when dependencies are built.
