file(REMOVE_RECURSE
  "CMakeFiles/authenticated_session.dir/authenticated_session.cpp.o"
  "CMakeFiles/authenticated_session.dir/authenticated_session.cpp.o.d"
  "authenticated_session"
  "authenticated_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authenticated_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
