# Empty compiler generated dependencies file for consent_manager.
# This may be replaced when dependencies are built.
