file(REMOVE_RECURSE
  "CMakeFiles/consent_manager.dir/consent_manager.cpp.o"
  "CMakeFiles/consent_manager.dir/consent_manager.cpp.o.d"
  "consent_manager"
  "consent_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consent_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
