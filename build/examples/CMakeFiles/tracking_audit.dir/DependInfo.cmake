
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tracking_audit.cpp" "examples/CMakeFiles/tracking_audit.dir/tracking_audit.cpp.o" "gcc" "examples/CMakeFiles/tracking_audit.dir/tracking_audit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crawler/CMakeFiles/crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/browsercore.dir/DependInfo.cmake"
  "/root/repo/build/src/cookies/CMakeFiles/cookiecore.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/exthost.dir/DependInfo.cmake"
  "/root/repo/build/src/entities/CMakeFiles/entities.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/scriptengine.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptocore.dir/DependInfo.cmake"
  "/root/repo/build/src/webplat/CMakeFiles/webplat.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
