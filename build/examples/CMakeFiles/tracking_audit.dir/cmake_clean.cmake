file(REMOVE_RECURSE
  "CMakeFiles/tracking_audit.dir/tracking_audit.cpp.o"
  "CMakeFiles/tracking_audit.dir/tracking_audit.cpp.o.d"
  "tracking_audit"
  "tracking_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracking_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
