# Empty dependencies file for tracking_audit.
# This may be replaced when dependencies are built.
