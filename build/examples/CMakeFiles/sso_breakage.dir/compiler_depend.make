# Empty compiler generated dependencies file for sso_breakage.
# This may be replaced when dependencies are built.
