file(REMOVE_RECURSE
  "CMakeFiles/sso_breakage.dir/sso_breakage.cpp.o"
  "CMakeFiles/sso_breakage.dir/sso_breakage.cpp.o.d"
  "sso_breakage"
  "sso_breakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sso_breakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
