// cglint — determinism & layering static analysis for the CookieGuard tree.
//
// Usage:
//   cglint [--config lint/layering.txt] [--census] [--quiet] PATH...
//
// Exit codes: 0 clean, 1 violations (or reasonless/malformed suppressions),
// 2 usage or configuration error. Run from the repository root so module
// mapping sees repo-relative paths:
//
//   ./build/tools/cglint --config lint/layering.txt --census src bench

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/linter.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--config FILE] [--census] [--quiet] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_file = "lint/layering.txt";
  bool census = false;
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config") {
      if (++i >= argc) return usage(argv[0]);
      config_file = argv[i];
    } else if (arg == "--census") {
      census = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  std::string error;
  const auto config = cg::lint::Config::load(config_file, &error);
  if (!config) {
    std::cerr << "cglint: " << config_file << ": " << error << '\n';
    return 2;
  }

  // Tool-side timing is diagnostic output about the linter itself, never
  // crawl-visible bytes; the virtual clock does not exist at lint time.
  const auto start =
      std::chrono::steady_clock::now();  // cglint: allow(D1) — linter wall-clock timing is diagnostic-only output
  const cg::lint::LintReport report = cg::lint::lint_paths(*config, roots);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)  // cglint: allow(D1) — linter wall-clock timing is diagnostic-only output
          .count();

  if (!quiet) {
    std::cout << cg::lint::format_report(report, census);
    std::cout << "cglint: scanned in " << elapsed_ms << " ms\n";
  }
  return report.clean() ? 0 : 1;
}
