// cglint — determinism & layering static analysis for the CookieGuard tree.
//
// Usage:
//   cglint [--config lint/layering.txt] [--enums lint/enums.txt]
//          [--metrics lint/metrics.txt] [--census] [--quiet]
//          [--sarif FILE] [--baseline FILE] [--write-baseline FILE]
//          [--max-ms N] PATH...
//
// The enum/metric registries default to lint/enums.txt and lint/metrics.txt
// when those files exist; rules E1/M1 are inert without them. --baseline
// excuses findings recorded in a checked-in baseline (CI gates on *new*
// findings); --write-baseline snapshots the current findings and exits 0.
// --sarif writes a SARIF 2.1.0 log ("-" for stdout). --max-ms fails the run
// (exit 3) when the whole-tree scan exceeds the budget.
//
// Exit codes: 0 clean, 1 violations (or reasonless/malformed suppressions),
// 2 usage or configuration error, 3 over the --max-ms budget. Run from the
// repository root so module mapping sees repo-relative paths:
//
//   ./build/tools/cglint --config lint/layering.txt --census src bench

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/linter.h"
#include "lint/sarif.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--config FILE] [--enums FILE] [--metrics FILE]"
               " [--census] [--quiet] [--sarif FILE] [--baseline FILE]"
               " [--write-baseline FILE] [--max-ms N] PATH...\n";
  return 2;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.flush();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_file = "lint/layering.txt";
  std::string enums_file;
  std::string metrics_file;
  std::string sarif_file;
  std::string baseline_file;
  std::string write_baseline_file;
  double max_ms = 0.0;
  bool census = false;
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config_file = v;
    } else if (arg == "--enums") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      enums_file = v;
    } else if (arg == "--metrics") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      metrics_file = v;
    } else if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      sarif_file = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      baseline_file = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      write_baseline_file = v;
    } else if (arg == "--max-ms") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      try {
        max_ms = std::stod(v);
      } catch (...) {
        return usage(argv[0]);
      }
    } else if (arg == "--census") {
      census = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  std::string error;
  auto config = cg::lint::Config::load(config_file, &error);
  if (!config) {
    std::cerr << "cglint: " << config_file << ": " << error << '\n';
    return 2;
  }

  // Registries: explicit flags must load; the defaults attach only when the
  // checked-in files exist (so cglint still works on partial trees).
  const bool enums_default = enums_file.empty();
  if (enums_default) enums_file = "lint/enums.txt";
  if (!enums_default || std::filesystem::exists(enums_file)) {
    auto registry = cg::lint::NameRegistry::load(enums_file, &error);
    if (!registry) {
      std::cerr << "cglint: " << enums_file << ": " << error << '\n';
      return 2;
    }
    config->set_enum_registry(std::move(*registry));
  }
  const bool metrics_default = metrics_file.empty();
  if (metrics_default) metrics_file = "lint/metrics.txt";
  if (!metrics_default || std::filesystem::exists(metrics_file)) {
    auto registry = cg::lint::NameRegistry::load(metrics_file, &error);
    if (!registry) {
      std::cerr << "cglint: " << metrics_file << ": " << error << '\n';
      return 2;
    }
    config->set_metric_registry(std::move(*registry));
  }

  // Tool-side timing is diagnostic output about the linter itself, never
  // crawl-visible bytes; the virtual clock does not exist at lint time.
  const auto start =
      std::chrono::steady_clock::now();  // cglint: allow(D1) — linter wall-clock timing is diagnostic-only output
  cg::lint::LintReport report = cg::lint::lint_paths(*config, roots);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)  // cglint: allow(D1) — linter wall-clock timing is diagnostic-only output
          .count();

  if (!write_baseline_file.empty()) {
    if (!write_text_file(write_baseline_file,
                         cg::lint::write_baseline_text(report))) {
      std::cerr << "cglint: cannot write baseline: " << write_baseline_file
                << '\n';
      return 2;
    }
    if (!quiet) {
      std::cout << "cglint: wrote " << report.violations.size()
                << " finding(s) to " << write_baseline_file << '\n';
    }
    return 0;
  }

  if (!baseline_file.empty()) {
    const auto baseline = cg::lint::Baseline::load(baseline_file, &error);
    if (!baseline) {
      std::cerr << "cglint: " << baseline_file << ": " << error << '\n';
      return 2;
    }
    cg::lint::apply_baseline(&report, *baseline);
  }

  if (!sarif_file.empty()) {
    const std::string sarif = cg::lint::to_sarif(report);
    if (sarif_file == "-") {
      std::cout << sarif;
    } else if (!write_text_file(sarif_file, sarif)) {
      std::cerr << "cglint: cannot write SARIF log: " << sarif_file << '\n';
      return 2;
    }
  }

  if (!quiet) {
    std::cout << cg::lint::format_report(report, census);
    std::cout << "cglint: scanned in " << elapsed_ms << " ms\n";
  }
  if (!report.clean()) return 1;
  if (max_ms > 0.0 && elapsed_ms > max_ms) {
    std::cerr << "cglint: scan took " << elapsed_ms
              << " ms, over the --max-ms " << max_ms << " budget\n";
    return 3;
  }
  return 0;
}
