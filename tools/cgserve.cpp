// cgserve — the CGAR serving daemon/CLI.
//
// Opens one or more archives, pays the load-time fold once, then answers
// queries in the line protocol of serve/query.h:
//
//   cgserve --archive crawl.cgar --query "site 17" --query table1
//   cgserve --archive a.cgar --archive b.cgar            # REPL on stdin
//
// One-shot --query flags run in order and exit; with none, cgserve reads
// queries from stdin until EOF ("quit" also exits) — that loop is the
// daemon mode, designed to sit behind a pipe or socket relay. Answers are
// single-line JSON on stdout, byte-deterministic for a given archive set
// and query; diagnostics (timing, startup) go to stderr so stdout stays
// clean for consumers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "report/json.h"
#include "serve/server.h"

namespace {

using cg::serve::Query;
using cg::serve::Server;
using cg::serve::ServerConfig;

struct Options {
  std::vector<std::string> archives;
  std::vector<std::string> queries;  // one-shot; empty -> stdin REPL
  std::string metrics_path;          // --metrics FILE: serve.* counters JSON
  bool timing = false;               // --timing: per-query latency to stderr
  std::size_t cache_entries = 4096;  // --cache-entries N (0 disables)
};

int usage() {
  std::fprintf(stderr,
               "usage: cgserve --archive FILE [--archive FILE...]\n"
               "               [--query LINE...] [--timing] [--metrics FILE]\n"
               "               [--cache-entries N]\n"
               "queries: site <rank> | table1 | totals | top-exfiltrated [n]\n"
               "         | top-domains [n] | entity <name> | stats\n"
               "         | waves [domain]   (base+delta archive chains)\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--timing") {
      out->timing = true;
    } else if (arg == "--archive" && i + 1 < argc) {
      out->archives.emplace_back(argv[++i]);
    } else if (arg == "--query" && i + 1 < argc) {
      out->queries.emplace_back(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      out->metrics_path = argv[++i];
    } else if (arg == "--cache-entries" && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) return false;
      out->cache_entries = static_cast<std::size_t>(n);
    } else {
      return false;
    }
  }
  return !out->archives.empty();
}

/// Answers one protocol line. Parse failures are answered (as JSON errors),
/// not dropped — a daemon must respond to every request.
void answer(const Server& server, const std::string& line, bool timing) {
  const auto query = cg::serve::parse_query(line);
  if (!query) {
    std::printf("{\"error\":\"cannot parse query\",\"line\":%s}\n",
                cg::report::Json(line).dump().c_str());
    return;
  }
  const auto start =
      std::chrono::steady_clock::now();  // cglint: allow(D1) — --timing latency diagnostics on stderr; stdout bytes never depend on it
  const std::string text = server.handle_text(*query);
  const auto elapsed =
      std::chrono::steady_clock::now() - start;  // cglint: allow(D1) — --timing latency diagnostics on stderr; stdout bytes never depend on it
  std::printf("%s\n", text.c_str());
  if (timing) {
    const double micros =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            elapsed)
            .count();
    std::fprintf(stderr, "cgserve: %s: %.1f us\n",
                 cg::serve::to_text(*query).c_str(), micros);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return usage();

  ServerConfig config;
  config.cache.max_entries = options.cache_entries;

  cg::store::Error error;
  const auto server = Server::open(options.archives, config, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "cgserve: cannot serve: %s\n",
                 error.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "cgserve: serving %d sites from %d archive(s)\n",
               server->site_count(), server->archive_count());

  if (!options.queries.empty()) {
    for (const std::string& line : options.queries) {
      answer(*server, line, options.timing);
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit" || line == "exit") break;
      if (line.empty()) continue;
      answer(*server, line, options.timing);
    }
  }

  if (!options.metrics_path.empty()) {
    cg::obs::MetricsRegistry registry;
    server->export_metrics(registry);
    std::ofstream out(options.metrics_path);
    out << registry.to_json().dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "cgserve: cannot write %s\n",
                   options.metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
