// tracking_audit: a single-site privacy audit built on the library's public
// API — the kind of tool a site owner would run to learn which third-party
// scripts touch cookies they do not own.
//
// Usage: tracking_audit [site-index]   (default 41; CG_SITES-independent)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"

int main(int argc, char** argv) {
  using namespace cg;

  corpus::CorpusParams params;
  params.site_count = 200;
  corpus::Corpus corpus(params);

  int index = 41;
  if (argc > 1) index = std::atoi(argv[1]) % corpus.size();
  const auto& bp = corpus.site(index);

  std::printf("Auditing https://%s/ (rank %d)\n", bp.host.c_str(), bp.rank);
  std::printf("%s\n\n", std::string(64, '=').c_str());

  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;  // visit() never applies the fault plan
  const auto log = crawler.visit(index, options);

  // --- scripts in the main frame -----------------------------------------
  std::printf("Scripts in the main frame (%zu inclusions):\n",
              log.includes.size());
  for (const auto& inc : log.includes) {
    if (inc.is_inline) {
      std::printf("  [inline]   <anonymous snippet>\n");
      continue;
    }
    std::printf("  [%-8s] %-60s %s\n",
                inc.inclusion == script::Inclusion::kDirect ? "direct"
                                                            : "indirect",
                inc.url.c_str(), script::to_string(inc.category));
  }

  // --- cookie ownership ----------------------------------------------------
  std::printf("\nCookies set during the visit:\n");
  std::map<std::string, std::string> owner;
  for (const auto& h : log.http_sets) {
    if (h.http_only) continue;
    owner.try_emplace(h.cookie_name, h.setter_domain + " (HTTP)");
  }
  for (const auto& s : log.script_sets) {
    if (s.change_type != cookies::CookieChange::Type::kCreated) continue;
    owner.try_emplace(s.cookie_name,
                      (s.setter_domain.empty() ? "inline" : s.setter_domain) +
                          " via " +
                          std::string(cookies::to_string(s.api)));
  }
  for (const auto& [name, who] : owner) {
    std::printf("  %-26s set by %s\n", name.c_str(), who.c_str());
  }

  // --- cross-domain flows --------------------------------------------------
  analysis::Analyzer analyzer(corpus.entities());
  analyzer.ingest(log);

  std::printf("\nCross-domain cookie flows detected:\n");
  bool any = false;
  for (const auto& [pair, stats] : analyzer.pairs()) {
    for (const auto& [entity, n] : stats.exfiltrator_entities) {
      std::printf("  EXFILTRATED  %-22s (owner %s) by %s -> {",
                  pair.name.c_str(), pair.owner_domain.c_str(),
                  entity.c_str());
      bool first = true;
      for (const auto& [dest, m] : stats.destination_entities) {
        std::printf("%s%s", first ? "" : ", ", dest.c_str());
        first = false;
      }
      std::printf("}\n");
      any = true;
    }
    for (const auto& [entity, n] : stats.overwriter_entities) {
      std::printf("  OVERWRITTEN  %-22s (owner %s) by %s\n",
                  pair.name.c_str(), pair.owner_domain.c_str(),
                  entity.c_str());
      any = true;
    }
    for (const auto& [entity, n] : stats.deleter_entities) {
      std::printf("  DELETED      %-22s (owner %s) by %s\n",
                  pair.name.c_str(), pair.owner_domain.c_str(),
                  entity.c_str());
      any = true;
    }
  }
  if (!any) std::printf("  (none on this site)\n");

  std::printf("\nOutbound requests by third parties: %zu\n",
              log.requests.size());
  std::printf("Recommendation: enable CookieGuard (see the quickstart "
              "example) to isolate the jar per script origin.\n");
  return 0;
}
