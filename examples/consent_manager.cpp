// consent_manager: reconstructs the paper's §5.5 manipulation case studies
// on a hand-built page (no corpus), showing the three intents behind
// cross-domain manipulation — collision, competition, compliance — and what
// CookieGuard does to each.
//
// The page embeds:
//   * Criteo (sets cto_bundle, a 194-char hash),
//   * PubMatic (deliberately overwrites cto_bundle with a 258-char hash —
//     the paper's "collusion or competition" case),
//   * two widgets that both use the generic name cookie_test ("collision"),
//   * a consent manager that deletes _fbp on decline ("privacy compliance").
#include <cstdio>

#include "browser/browser.h"
#include "browser/page.h"
#include "cookieguard/cookieguard.h"
#include "script/ops.h"

namespace {

using namespace cg;

browser::ScriptCatalog build_catalog() {
  using script::Category;
  browser::ScriptCatalog catalog;

  auto add = [&](const char* id, const char* url, Category category,
                 std::vector<script::ScriptOp> ops) {
    script::ScriptSpec spec;
    spec.id = id;
    spec.url_template = url;
    spec.category = category;
    spec.ops = std::move(ops);
    catalog.add(std::move(spec));
  };

  add("criteo", "https://static.criteo.net/js/ld/ld.js",
      Category::kRtbExchange,
      {script::set_cookie("cto_bundle", "{hex:194}")});
  add("pubmatic", "https://ads.pubmatic.com/AdServer/js/pwt/pwt.js",
      Category::kRtbExchange,
      {script::overwrite({"cto_bundle"}, "{hex:258}")});
  add("widget-a", "https://cdn.widget-a.com/w.js", Category::kSupport,
      {script::set_cookie("cookie_test", "{hex:8}", "; Path=/", true)});
  add("widget-b", "https://cdn.widget-b.io/w.js", Category::kSupport,
      {script::overwrite({"cookie_test"}, "{hex:8}")});
  add("fbpixel", "https://connect.facebook.net/en_US/fbevents.js",
      Category::kSocial,
      {script::set_cookie("_fbp", "fb.1.{ts_ms}.{rand:18}")});
  add("consent", "https://cdn-cookieyes.com/client_data/demo/script.js",
      Category::kConsent, {script::delete_cookies({"_fbp"})});
  return catalog;
}

void show_jar(browser::Browser& browser, const char* label) {
  std::printf("\n%s\n", label);
  if (browser.jar().size() == 0) {
    std::printf("  (empty)\n");
    return;
  }
  for (const auto& cookie : browser.jar().all()) {
    std::string value = cookie.value;
    if (value.size() > 40) value = value.substr(0, 37) + "...";
    std::printf("  %-14s = %-42s (len %zu)\n", cookie.name.c_str(),
                value.c_str(), cookie.value.size());
  }
}

void run_scenario(bool with_guard) {
  const auto catalog = build_catalog();
  browser::Browser browser({}, /*seed=*/7);
  browser.set_catalog(&catalog);
  browser::DocumentSpec doc;
  doc.script_ids = {"criteo", "fbpixel", "widget-a"};
  browser.set_document_provider([doc](const net::Url&) { return doc; });

  cookieguard::CookieGuard guard;
  if (with_guard) browser.add_extension(&guard);

  auto page = browser.navigate(
      net::Url::must_parse("https://www.publisher-demo.com/"));
  show_jar(browser, "Jar after page load (criteo + fbpixel + widget-a ran):");

  std::printf("\n-> PubMatic script executes (competition: rewrites "
              "cto_bundle 194 -> 258 chars)\n");
  page->run_catalog_script("pubmatic");
  std::printf("-> widget-b executes (collision: generic name cookie_test)\n");
  page->run_catalog_script("widget-b");
  std::printf("-> consent manager executes decline path (compliance: "
              "deletes _fbp)\n");
  page->run_catalog_script("consent");
  page->loop().run_until_idle();

  show_jar(browser, "Jar afterwards:");
  if (with_guard) {
    std::printf("\nCookieGuard blocked %llu cross-domain writes and hid "
                "cookies on %llu reads.\n",
                static_cast<unsigned long long>(guard.stats().writes_blocked),
                static_cast<unsigned long long>(guard.stats().reads_filtered));
  }
}

}  // namespace

int main() {
  std::printf("=============================================\n");
  std::printf(" Scenario 1: plain browser (paper section 5.5)\n");
  std::printf("=============================================\n");
  run_scenario(/*with_guard=*/false);

  std::printf("\n=============================================\n");
  std::printf(" Scenario 2: same page with CookieGuard\n");
  std::printf("=============================================\n");
  run_scenario(/*with_guard=*/true);

  std::printf("\nWith CookieGuard, cto_bundle keeps Criteo's 194-char value, "
              "cookie_test keeps widget-a's\nvalue, and _fbp survives the "
              "consent manager (only its owner or the site may remove "
              "it).\n");
  return 0;
}
