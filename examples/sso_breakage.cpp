// sso_breakage: walks the paper's §7.2 Single Sign-On breakage story on one
// zoom.us-style site (two provider domains share the session) under each
// CookieGuard deployment mode, narrating what the user would experience.
#include <cstdio>

#include "breakage/breakage.h"

int main() {
  using namespace cg;
  using breakage::Aspect;
  using breakage::GuardMode;
  using breakage::Severity;

  corpus::CorpusParams params;
  params.site_count = 600;
  corpus::Corpus corpus(params);
  breakage::BreakageEvaluator evaluator(corpus);

  // Find representative sites for each breakage story.
  int two_domain = -1, refresh = -1, messenger = -1;
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& bp = corpus.site(i);
    if (two_domain < 0 && bp.sso_two_domain &&
        bp.sso_provider_a == "ms-sso-a") {
      two_domain = i;
    }
    if (refresh < 0 && bp.has_sso && !bp.sso_two_domain &&
        bp.sso_server_refresh) {
      refresh = i;
    }
    if (messenger < 0 && bp.has_entity_cdn_widget) messenger = i;
  }

  const auto describe = [](Severity s) {
    switch (s) {
      case Severity::kNone:
        return "works";
      case Severity::kMinor:
        return "MINOR breakage";
      case Severity::kMajor:
        return "MAJOR breakage";
    }
    return "?";
  };

  const auto walk = [&](const char* story, int index, Aspect aspect) {
    if (index < 0) {
      std::printf("%s: no matching site in this corpus slice\n", story);
      return;
    }
    const auto& bp = corpus.site(index);
    std::printf("\n%s\n  site: https://%s/\n", story, bp.host.c_str());
    for (const auto mode :
         {GuardMode::kOff, GuardMode::kStrict, GuardMode::kEntityGrouping,
          GuardMode::kGroupingPlusPolicies}) {
      const auto result = evaluator.evaluate_site(index, mode);
      std::printf("    %-42s -> %s\n", breakage::to_string(mode),
                  describe(result[aspect]));
    }
  };

  std::printf("CookieGuard SSO/functionality breakage walkthrough "
              "(paper section 7.2)\n");
  std::printf("====================================================="
              "===============\n");

  walk("Story 1 — zoom.us pattern: microsoft.com sets the session cookie, "
       "live.com maintains it",
       two_domain, Aspect::kSso);
  std::printf("  (strict isolation hides the session cookie from the second "
              "provider; entity grouping\n   repairs it because both domains "
              "are Microsoft)\n");

  walk("Story 2 — cnn.com pattern: the server re-emits the session cookie "
       "on reload",
       refresh, Aspect::kSso);
  std::printf("  (the HTTP re-set re-attributes the cookie to the first "
              "party, so the provider script\n   loses access after a "
              "refresh: sign-in works, reload logs out)\n");

  walk("Story 3 — facebook.com pattern: the chat widget lives on the "
       "entity CDN (fbcdn.net)",
       messenger, Aspect::kFunctionality);
  std::printf("  (fbcdn.net is third-party to facebook.net by eTLD+1 but the "
              "same organization;\n   the DuckDuckGo-entity whitelist "
              "restores the widget)\n");

  std::printf("\nTable-3 takeaway: strict CookieGuard breaks SSO on ~11%% of "
              "sites; grouping + per-site\ndomain policies reduce breakage "
              "to ~3%%.\n");
  return 0;
}
