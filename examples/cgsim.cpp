// cgsim: command-line driver for the CookieGuard simulator.
//
//   cgsim crawl    [--sites N] [--threads T] [--guard] [--no-faults]
//                  [--policy none|cookieguard|fpi|chips]
//                  [--stream] [--wave W] [--evo-seed S] [--totals-only]
//                  [--json FILE] [--pairs-csv FILE] [--domains-csv FILE]
//                  [--health FILE] [--checkpoint FILE] [--checkpoint-every N]
//                  [--resume FILE]
//                  [--trace FILE] [--trace-detail crawl|full]
//                  [--trace-wall-clock] [--metrics FILE]
//                  [--runtime-metrics FILE]
//   cgsim audit    [--sites N] --site INDEX
//   cgsim breakage [--sites N] [--sample K]
//   cgsim perf     [--sites N] [--threads T]
//   cgsim trace-check FILE
//   cgsim pack     [--sites N] [--threads T] [--no-faults] --out FILE
//                  [--policy none|cookieguard|fpi|chips]
//                  [--wave W] [--evo-seed S]
//                  [--base FILE[,FILE...]]
//                  [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
//                  [--scrub] [--metrics FILE]
//
// --policy selects the cookie-partitioning engine for the defense bake-off
// (src/policy/): none is the status-quo jar and byte-identical to omitting
// the flag; cookieguard = none's jar plus the CookieGuard extension (same
// browsers as --guard); fpi is Firefox First-Party Isolation; chips is
// RFC6265bis partitioned cookies. The active policy is recorded in the
// CGAR footer, hard provenance like the corpus and fault seeds.
//   cgsim query    --archive FILE[,FILE...] [--wave W] [--site RANK]
//                  [--json FILE] [--pairs-csv FILE] [--domains-csv FILE]
//   cgsim verify-archive FILE
//
// pack runs the measurement crawl once and streams it into a CGAR archive
// (src/store/) — crawl once, analyze many times. query replays an archive
// through the analyzer in seconds; verify-archive CRC-walks every block and
// reports the corruption taxonomy class on failure. pack at any thread
// count emits a byte-identical archive, and pack --checkpoint / --resume
// reuses the partial archive segment: the resumed file equals an
// uninterrupted pack byte-for-byte.
//
// Longitudinal waves (src/evolve/ + store delta archives):
//   --stream         crawl from a streaming corpus provider — blueprints
//                    are generated on demand, so memory stays O(shards)
//                    instead of O(sites) (the 1M-site configuration).
//                    Output is byte-identical to the materialized corpus.
//   --wave W         crawl/pack wave W of the evolving corpus (seeded
//                    schedule; wave 0 is byte-identical to the base
//                    corpus). Implies --stream.
//   --evo-seed S     evolution schedule seed (decimal or 0x hex).
//   --totals-only    keep only the Totals counters during analysis —
//                    aggregate state stays O(1) in site count (pairs /
//                    domains / ranked views read empty).
//   pack --base A[,B,...]  pack the next wave as a *delta archive* against
//                    the base+delta chain A,B,...: unchanged sites become
//                    zero-byte inherited footer entries, changed sites
//                    compact diff blocks. The chain tail pins the corpus
//                    (seeds, site count, policy, wave); checkpoint/resume
//                    is not supported for delta packs.
//   query --archive A,B,... [--wave W]  analyzes wave W (default: newest)
//                    by materializing sites through the base+delta chain —
//                    answers are byte-identical to querying an
//                    independently packed full archive of that wave.
//
// --threads 0 (the default for crawl/perf here is 1) uses every hardware
// thread; any thread count produces byte-identical output — including the
// --trace / --metrics files (virtual-time only; --trace-wall-clock
// deliberately trades that identity for real-time annotations).
// trace-check re-parses an exported trace and verifies it is valid Chrome
// trace-event JSON with non-decreasing virtual time on every track.
//
// Everything the benches compute, behind one adoptable binary with
// machine-readable output.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/archive.h"
#include "breakage/breakage.h"
#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "corpus/streaming_corpus.h"
#include "crawler/crawler.h"
#include "entities/entity_map.h"
#include "evolve/wave_corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/perf.h"
#include "policy/partition_policy.h"
#include "report/report.h"
#include "runtime/thread_pool.h"
#include "store/atomic_file.h"
#include "store/chain.h"
#include "store/reader.h"
#include "store/writer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace cg;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoi(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    // Flags without values: --guard
    // Built locally then moved in: a char* assign through the map's
    // operator[] trips the GCC 12 -Wrestrict false positive (PR 105329).
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value.assign(argv[++i]);
    }
    args.options[key] = std::move(value);
  }
  return args;
}

corpus::Corpus make_corpus(const Args& args) {
  corpus::CorpusParams params;
  params.site_count = args.get_int("sites", 2000);
  return corpus::Corpus(params);
}

std::uint64_t parse_u64(const std::string& text, std::uint64_t fallback) {
  if (text.empty()) return fallback;
  return std::strtoull(text.c_str(), nullptr, 0);  // decimal or 0x hex
}

/// Comma-separated path list (for --base / --archive chains).
std::vector<std::string> split_paths(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The footer-provenance mirror of the crawl's policy flag.
store::ArchivePolicy to_archive_policy(policy::PolicyKind kind) {
  switch (kind) {
    case policy::PolicyKind::kNone:
      return store::ArchivePolicy::kNone;
    case policy::PolicyKind::kCookieGuard:
      return store::ArchivePolicy::kCookieGuard;
    case policy::PolicyKind::kFirstPartyIsolation:
      return store::ArchivePolicy::kFirstPartyIsolation;
    case policy::PolicyKind::kChips:
      return store::ArchivePolicy::kChips;
  }
  return store::ArchivePolicy::kNone;
}

/// Peak resident set size in KiB (0 where unsupported). Reported on stderr
/// only — stdout stays byte-deterministic.
long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

/// The corpus provider a crawl/pack run uses: materialized by default,
/// streaming under --stream, wave-evolved under --wave/--evo-seed. All
/// three produce byte-identical blueprints for the same (seed, wave).
std::unique_ptr<corpus::CorpusView> make_corpus_view(const Args& args) {
  corpus::CorpusParams params;
  params.site_count = args.get_int("sites", 2000);
  if (args.has("wave") || args.has("evo-seed")) {
    evolve::EvolutionParams evolution;
    evolution.seed = parse_u64(args.get("evo-seed", ""), evolution.seed);
    return std::make_unique<evolve::WaveCorpus>(params, evolution,
                                                args.get_int("wave", 0));
  }
  if (args.has("stream")) {
    return std::make_unique<corpus::StreamingCorpus>(params);
  }
  return std::make_unique<corpus::Corpus>(params);
}

/// Opens a comma-separated archive list and links it into a wave chain.
/// `readers` owns the archives for the chain's lifetime.
std::optional<store::WaveChain> open_chain(
    const std::vector<std::string>& paths,
    std::vector<store::Reader>* readers) {
  readers->reserve(paths.size());
  for (const std::string& path : paths) {
    store::Error error;
    auto reader = store::Reader::open(path, &error);
    if (!reader) {
      std::fprintf(stderr, "cgsim: cannot open archive %s (%s)\n",
                   path.c_str(), error.to_string().c_str());
      return std::nullopt;
    }
    readers->push_back(std::move(*reader));
  }
  std::vector<const store::Reader*> links;
  links.reserve(readers->size());
  for (const store::Reader& reader : *readers) links.push_back(&reader);
  store::Error error;
  auto chain = store::WaveChain::link(std::move(links), &error);
  if (!chain) {
    std::fprintf(stderr, "cgsim: archive chain rejected (%s)\n",
                 error.to_string().c_str());
  }
  return chain;
}

/// Renders `contents` into `path` via tmp+flush+rename. False (with the
/// failure on stderr) when the result did not land — callers treat their
/// output files as products, never as best-effort side effects.
bool write_output(const std::string& path, const std::string& contents) {
  store::Error error;
  if (!store::write_file_atomic(path, contents, &error)) {
    std::fprintf(stderr, "cgsim: %s\n", error.to_string().c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Summary lines + optional machine-readable outputs, shared by the live
/// crawl and the analyze-from-archive path so their stdout is diffable.
/// False when a requested output file could not be written.
bool print_analysis(const Args& args, const analysis::Analyzer& analyzer) {
  const auto& t = analyzer.totals();
  const double n = t.sites_complete;
  std::printf("sites analyzed: %d\n", t.sites_complete);
  std::printf("cross-domain exfiltration: %.1f%% | overwriting: %.1f%% | "
              "deletion: %.1f%%\n",
              100.0 * t.sites_doc_exfil / n, 100.0 * t.sites_doc_overwrite / n,
              100.0 * t.sites_doc_delete / n);

  bool ok = true;
  if (args.has("json")) {
    std::ostringstream out;
    out << report::summary_to_json(analyzer, 20).dump(2) << '\n';
    ok = write_output(args.get("json", "summary.json"), out.str()) && ok;
  }
  if (args.has("pairs-csv")) {
    std::ostringstream out;
    report::write_pairs_csv(analyzer, 20, out);
    ok = write_output(args.get("pairs-csv", "pairs.csv"), out.str()) && ok;
  }
  if (args.has("domains-csv")) {
    std::ostringstream out;
    report::write_domains_csv(analyzer, 20, out);
    ok = write_output(args.get("domains-csv", "domains.csv"), out.str()) && ok;
  }
  return ok;
}

/// Loads a crawl checkpoint, ignoring (and warning about) a leftover
/// `<path>.tmp` from an interrupted atomic write — its contents were never
/// promoted to truth, so `path` itself is the trustworthy state.
std::optional<crawler::CrawlCheckpoint> load_checkpoint(
    const std::string& path) {
  std::string tmp = path;
  tmp += store::kAtomicTmpSuffix;
  std::error_code tmp_ec;
  if (std::filesystem::exists(tmp, tmp_ec)) {
    std::fprintf(stderr,
                 "cgsim: ignoring leftover %s (interrupted checkpoint write)\n",
                 tmp.c_str());
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cgsim: cannot open checkpoint %s\n", path.c_str());
    return std::nullopt;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  if (in.bad()) {
    std::fprintf(stderr, "cgsim: read failed on checkpoint %s\n", path.c_str());
    return std::nullopt;
  }
  auto checkpoint = crawler::CrawlCheckpoint::from_json_string(text);
  if (!checkpoint) {
    std::fprintf(stderr, "cgsim: cannot parse checkpoint %s\n", path.c_str());
  }
  return checkpoint;
}

/// Checkpoint emission callback: atomic replace, warn-only on failure (the
/// crawl keeps running; the previous checkpoint stays the recovery point).
std::function<void(const crawler::CrawlCheckpoint&)> checkpoint_writer(
    const std::string& checkpoint_path) {
  return [checkpoint_path](const crawler::CrawlCheckpoint& checkpoint) {
    std::string contents = checkpoint.to_json_string();
    contents += '\n';
    store::Error error;
    if (!store::write_file_atomic(checkpoint_path, contents, &error)) {
      std::fprintf(stderr, "cgsim: checkpoint not persisted: %s\n",
                   error.to_string().c_str());
    }
  };
}

int cmd_crawl(const Args& args) {
  const std::unique_ptr<corpus::CorpusView> corpus_view(make_corpus_view(args));
  const corpus::CorpusView& corpus = *corpus_view;
  crawler::Crawler crawler(corpus);
  analysis::AnalyzerOptions analyzer_options;
  analyzer_options.totals_only = args.has("totals-only");
  analysis::Analyzer analyzer(corpus.entities(), analyzer_options);

  crawler::CrawlOptions options;
  options.threads = args.get_int("threads", 1);
  if (args.has("no-faults")) options.fault_plan.reset();
  const auto policy_kind = policy::parse_policy(args.get("policy", "none"));
  if (!policy_kind) {
    std::fprintf(stderr,
                 "cgsim: --policy must be none, cookieguard, fpi, or chips\n");
    return 2;
  }
  options.policy = *policy_kind;

  // Observability: stream the trace straight to disk (a 20k-site trace need
  // not fit in memory); metrics registries fold site-by-site and are
  // serialized once at the end.
  std::ofstream trace_out;
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (args.has("trace")) {
    const std::string detail = args.get("trace-detail", "crawl");
    if (detail != "crawl" && detail != "full") {
      std::fprintf(stderr, "cgsim: --trace-detail must be crawl or full\n");
      return 2;
    }
    const std::string trace_path = args.get("trace", "trace.json");
    trace_out.open(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cgsim: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    obs::TraceConfig config;
    config.detail =
        detail == "full" ? obs::Detail::kFull : obs::Detail::kCrawl;
    config.capture_wall_clock = args.has("trace-wall-clock");
    recorder = std::make_unique<obs::TraceRecorder>(config, &trace_out);
    options.trace = recorder.get();
  }
  obs::MetricsRegistry metrics;
  obs::MetricsRegistry scheduler_metrics;
  if (args.has("metrics")) options.metrics = &metrics;
  if (args.has("runtime-metrics")) {
    options.scheduler_metrics = &scheduler_metrics;
  }

  // One CookieGuard per crawl worker — extensions are stateful, so each
  // thread needs its own instance (behaviour is per-visit deterministic).
  // --policy cookieguard is the jar-identical engine plus the extension, so
  // it installs the exact same per-worker guards as --guard.
  const bool want_guard =
      args.has("guard") ||
      options.policy == policy::PolicyKind::kCookieGuard;
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  if (want_guard) {
    const int workers = options.threads <= 0
                            ? runtime::ThreadPool::hardware_threads()
                            : options.threads;
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>());
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
  }

  // Crash-safe progress: persist a checkpoint every N sites; --resume
  // continues a killed crawl from the persisted file.
  const std::string checkpoint_path = args.get("checkpoint", "");
  if (!checkpoint_path.empty()) {
    options.checkpoint_interval = args.get_int("checkpoint-every", 100);
    options.on_checkpoint = checkpoint_writer(checkpoint_path);
  }

  const auto sink = [&](instrument::VisitLog&& log) { analyzer.ingest(log); };
  crawler::CrawlHealth health;
  if (args.has("resume")) {
    const auto checkpoint = load_checkpoint(args.get("resume", ""));
    if (!checkpoint) return 1;
    if (checkpoint->corpus_seed != corpus.params().seed ||
        checkpoint->target_count > corpus.size()) {
      std::fprintf(stderr, "cgsim: checkpoint does not match this corpus\n");
      return 1;
    }
    std::printf("resuming at site %d of %d...\n", checkpoint->next_index,
                checkpoint->target_count);
    health = crawler.resume(*checkpoint, options, sink);
  } else {
    std::string note;
    if (want_guard) note += " with CookieGuard";
    if (options.policy != policy::PolicyKind::kNone &&
        options.policy != policy::PolicyKind::kCookieGuard) {
      note += " under policy ";
      note += policy::to_string(options.policy);
    }
    if (args.has("wave") || args.has("evo-seed")) {
      note += " at wave ";
      note += std::to_string(args.get_int("wave", 0));
    } else if (args.has("stream")) {
      note += " (streaming)";
    }
    std::printf("crawling %d sites%s...\n", corpus.size(), note.c_str());
    health = crawler.crawl(corpus.size(), options, sink);
  }

  if (recorder != nullptr) {
    recorder->finish();
    trace_out.flush();
    if (!trace_out.good()) {
      std::fprintf(stderr, "cgsim: writing %s failed\n",
                   args.get("trace", "trace.json").c_str());
      return 1;
    }
    std::printf("wrote %s (%zu trace events)\n",
                args.get("trace", "trace.json").c_str(),
                recorder->event_count());
  }
  if (args.has("metrics")) {
    std::ostringstream out;
    out << metrics.to_json().dump(2) << '\n';
    if (!write_output(args.get("metrics", "metrics.json"), out.str())) {
      return 1;
    }
  }
  if (args.has("runtime-metrics")) {
    std::ostringstream out;
    out << scheduler_metrics.to_json().dump(2) << '\n';
    if (!write_output(args.get("runtime-metrics", "runtime.json"),
                      out.str())) {
      return 1;
    }
  }

  std::printf(
      "crawl health: %d retained, %d excluded (%.1f%%), %d degraded, "
      "%d recovered by retries (%d attempts total)\n",
      health.sites_retained, health.sites_excluded,
      100.0 * health.exclusion_rate(), health.sites_degraded,
      health.sites_recovered, health.total_attempts);
  if (args.has("health")) {
    std::ostringstream out;
    out << health.to_json().dump(2) << '\n';
    if (!write_output(args.get("health", "health.json"), out.str())) return 1;
  }

  // The streaming-crawl RSS gate reads this line; stderr because peak RSS
  // is an OS measurement, not part of the deterministic output.
  std::fprintf(stderr, "cgsim: peak rss: %ld KiB\n", peak_rss_kib());
  return print_analysis(args, analyzer) ? 0 : 1;
}

// Crawl once, analyze many times: pack streams the measurement crawl into a
// CGAR archive. No analyzer runs here — the archive *is* the product.
int cmd_pack(const Args& args) {
  const auto policy_kind = policy::parse_policy(args.get("policy", "none"));
  if (!policy_kind) {
    std::fprintf(stderr,
                 "cgsim: --policy must be none, cookieguard, fpi, or chips\n");
    return 2;
  }

  // Delta packs (--base): the base chain pins the corpus — seeds, site
  // count, policy, wave — so the next wave is crawled from the exact
  // evolving population the base was, and the new archive records the
  // chain tail as its BaseProvenance.
  std::vector<store::Reader> base_readers;
  std::optional<store::WaveChain> base_chain;
  std::unique_ptr<corpus::CorpusView> corpus_view;
  std::uint64_t evolution_seed = 0;
  std::uint32_t wave = static_cast<std::uint32_t>(args.get_int("wave", 0));

  if (args.has("base")) {
    if (args.has("resume") || args.has("checkpoint")) {
      std::fprintf(stderr,
                   "cgsim: checkpoint/resume is not supported for delta "
                   "packs (--base)\n");
      return 2;
    }
    base_chain = open_chain(split_paths(args.get("base", "")), &base_readers);
    if (!base_chain) return 1;
    const store::Reader& tail = base_chain->archive(base_chain->waves() - 1);
    if (to_archive_policy(*policy_kind) != tail.policy()) {
      std::fprintf(
          stderr,
          "cgsim: --policy %s does not match the base chain's recorded "
          "policy %s\n",
          std::string(policy::to_string(*policy_kind)).c_str(),
          std::string(store::archive_policy_name(tail.policy())).c_str());
      return 2;
    }
    if (!args.has("wave")) wave = tail.wave() + 1;
    if (wave <= tail.wave()) {
      std::fprintf(stderr,
                   "cgsim: --wave %u is not later than the base chain's "
                   "wave %u\n",
                   static_cast<unsigned>(wave),
                   static_cast<unsigned>(tail.wave()));
      return 2;
    }
    evolve::EvolutionParams evolution;
    if (tail.evolution_seed() != 0) evolution.seed = tail.evolution_seed();
    evolution.seed = parse_u64(args.get("evo-seed", ""), evolution.seed);
    if (tail.evolution_seed() != 0 &&
        evolution.seed != tail.evolution_seed()) {
      std::fprintf(stderr,
                   "cgsim: --evo-seed 0x%llX does not match the base "
                   "chain's evolution seed 0x%llX\n",
                   static_cast<unsigned long long>(evolution.seed),
                   static_cast<unsigned long long>(tail.evolution_seed()));
      return 2;
    }
    evolution_seed = evolution.seed;
    corpus::CorpusParams params;
    params.site_count = tail.total_site_count();
    params.seed = tail.corpus_seed();
    if (args.has("sites") &&
        args.get_int("sites", 0) != params.site_count) {
      std::fprintf(stderr,
                   "cgsim: --sites ignored for delta packs (the base chain "
                   "pins %d sites)\n",
                   params.site_count);
    }
    corpus_view = std::make_unique<evolve::WaveCorpus>(
        params, evolution, static_cast<int>(wave));
  } else {
    corpus_view = make_corpus_view(args);
    if (args.has("wave") || args.has("evo-seed")) {
      evolve::EvolutionParams defaults;
      evolution_seed = parse_u64(args.get("evo-seed", ""), defaults.seed);
    }
  }
  const corpus::CorpusView& corpus = *corpus_view;
  crawler::Crawler crawler(corpus);

  crawler::CrawlOptions options;
  options.threads = args.get_int("threads", 1);
  if (args.has("no-faults")) options.fault_plan.reset();
  options.policy = *policy_kind;
  if (base_chain) options.delta_base = &*base_chain;

  const std::string out_path = args.get("out", "crawl.cgar");
  store::WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(options);
  writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  writer_options.policy = to_archive_policy(options.policy);
  writer_options.wave = wave;
  writer_options.evolution_seed = evolution_seed;
  if (base_chain) {
    const store::Reader& tail = base_chain->archive(base_chain->waves() - 1);
    if (writer_options.fault_seed != tail.fault_seed()) {
      std::fprintf(stderr,
                   "cgsim: a delta wave must crawl under the base chain's "
                   "fault plan (base fault seed 0x%llX, this crawl 0x%llX — "
                   "%s)\n",
                   static_cast<unsigned long long>(tail.fault_seed()),
                   static_cast<unsigned long long>(writer_options.fault_seed),
                   tail.fault_seed() == 0 ? "pass --no-faults"
                                          : "drop --no-faults");
      return 2;
    }
    writer_options.kind = store::ArchiveKind::kDelta;
    store::BaseProvenance base;
    base.corpus_seed = tail.corpus_seed();
    base.fault_seed = tail.fault_seed();
    base.evolution_seed = tail.evolution_seed();
    base.policy = tail.policy();
    base.wave = tail.wave();
    base.site_count = static_cast<std::uint32_t>(tail.total_site_count());
    base.footer_crc = tail.footer_crc();
    writer_options.base = base;
  }

  const std::string checkpoint_path = args.get("checkpoint", "");
  if (!checkpoint_path.empty()) {
    options.checkpoint_interval = args.get_int("checkpoint-every", 100);
  }
  // Self-healing I/O: read-back-verify appended blocks on request, and when
  // checkpointing, keep the unsynced tail in memory so an fsync loss at the
  // checkpoint barrier is healed instead of killing the pack.
  writer_options.io.scrub_writes = args.has("scrub");
  writer_options.io.buffer_unsynced = options.checkpoint_interval > 0;
  obs::MetricsRegistry pack_metrics;
  writer_options.metrics = &pack_metrics;
  if (args.has("metrics")) options.metrics = &pack_metrics;

  std::unique_ptr<store::Writer> writer;
  store::Error store_error;
  crawler::CrawlHealth health;

  if (args.has("resume")) {
    const auto checkpoint = load_checkpoint(args.get("resume", ""));
    if (!checkpoint) return 1;
    if (checkpoint->corpus_seed != corpus.params().seed ||
        checkpoint->target_count > corpus.size()) {
      std::fprintf(stderr, "cgsim: checkpoint does not match this corpus\n");
      return 1;
    }
    if (checkpoint->archive_sites < 0) {
      std::fprintf(stderr,
                   "cgsim: checkpoint has no archive segment — it was "
                   "written by `crawl`, not `pack`\n");
      return 1;
    }
    // The checkpoint references the archive segment; the writer truncates
    // any blocks written after it and appends from there.
    writer = store::Writer::resume(out_path, writer_options,
                                   checkpoint->archive_sites, &store_error);
    if (writer == nullptr) {
      std::fprintf(stderr, "cgsim: cannot resume archive %s (%s)\n",
                   out_path.c_str(), store_error.to_string().c_str());
      return 1;
    }
    options.archive = writer.get();
    if (!checkpoint_path.empty()) {
      options.on_checkpoint = checkpoint_writer(checkpoint_path);
    }
    std::printf("resuming pack at site %d of %d (%d blocks kept)...\n",
                checkpoint->next_index, checkpoint->target_count,
                writer->sites_written());
    health = crawler.resume(*checkpoint, options,
                            [](instrument::VisitLog&&) {});
  } else {
    writer = store::Writer::create(out_path, writer_options, &store_error);
    if (writer == nullptr) {
      std::fprintf(stderr, "cgsim: %s\n", store_error.to_string().c_str());
      return 1;
    }
    options.archive = writer.get();
    if (!checkpoint_path.empty()) {
      options.on_checkpoint = checkpoint_writer(checkpoint_path);
    }
    if (base_chain) {
      std::printf("packing wave %u of %d sites into %s (delta vs wave %u)...\n",
                  static_cast<unsigned>(wave), corpus.size(),
                  out_path.c_str(),
                  static_cast<unsigned>(
                      base_chain->archive(base_chain->waves() - 1).wave()));
    } else {
      std::printf("packing %d sites into %s...\n", corpus.size(),
                  out_path.c_str());
    }
    health = crawler.crawl(corpus.size(), options,
                           [](instrument::VisitLog&&) {});
  }

  if (!writer->finish(&store_error)) {
    std::fprintf(stderr, "cgsim: finalising %s failed (%s)\n",
                 out_path.c_str(), store_error.to_string().c_str());
    return 1;
  }
  std::printf(
      "crawl health: %d retained, %d excluded (%.1f%%), %d attempts total\n",
      health.sites_retained, health.sites_excluded,
      100.0 * health.exclusion_rate(), health.total_attempts);
  const int quarantined = health.exclusions[static_cast<int>(
      fault::FailureClass::kStorageFailure)];
  if (quarantined > 0) {
    std::printf("storage quarantine: %d sites excluded after exhausting the "
                "I/O retry budget\n",
                quarantined);
  }
  if (args.has("metrics")) {
    std::ostringstream out;
    out << pack_metrics.to_json().dump(2) << '\n';
    if (!write_output(args.get("metrics", "metrics.json"), out.str())) {
      return 1;
    }
  }
  if (base_chain) {
    const int total = writer->sites_written() + writer->inherited_written();
    std::printf(
        "wrote %s: wave %u, %d sites (%d delta blocks + %d inherited), "
        "%llu bytes\n",
        out_path.c_str(), static_cast<unsigned>(wave), total,
        writer->sites_written(), writer->inherited_written(),
        static_cast<unsigned long long>(writer->bytes_written()));
  } else {
    std::printf("wrote %s: %d sites, %llu bytes (%.1f bytes/site)\n",
                out_path.c_str(), writer->sites_written(),
                static_cast<unsigned long long>(writer->bytes_written()),
                writer->sites_written() > 0
                    ? static_cast<double>(writer->bytes_written()) /
                          writer->sites_written()
                    : 0.0);
  }
  return 0;
}

// Analyze-from-archive: everything `crawl` computes, without crawling.
int cmd_query(const Args& args) {
  const std::vector<std::string> paths = split_paths(args.get("archive", ""));
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: cgsim query --archive FILE[,FILE...] [--wave W] "
                 "[--site RANK]\n");
    return 2;
  }
  store::Error error;

  // Trend queries: a multi-archive list (or any delta archive, or an
  // explicit --wave) is a base+delta chain; sites are materialized through
  // it, and the answers for a wave are byte-identical to querying an
  // independently packed full archive of that wave.
  bool chain_query = paths.size() > 1 || args.has("wave");
  std::vector<store::Reader> readers;
  readers.reserve(paths.size());
  for (const std::string& path : paths) {
    auto opened = store::Reader::open(path, &error);
    if (!opened) {
      std::fprintf(stderr, "cgsim: cannot open archive %s (%s)\n",
                   path.c_str(), error.to_string().c_str());
      return 1;
    }
    if (opened->kind() == store::ArchiveKind::kDelta) chain_query = true;
    readers.push_back(std::move(*opened));
  }

  if (chain_query) {
    std::vector<const store::Reader*> links;
    links.reserve(readers.size());
    for (const store::Reader& r : readers) links.push_back(&r);
    const auto chain = store::WaveChain::link(std::move(links), &error);
    if (!chain) {
      std::fprintf(stderr, "cgsim: archive chain rejected (%s)\n",
                   error.to_string().c_str());
      return 1;
    }
    int wave_index = chain->waves() - 1;
    if (args.has("wave")) {
      const auto want = static_cast<std::uint32_t>(args.get_int("wave", 0));
      wave_index = -1;
      for (int i = 0; i < chain->waves(); ++i) {
        if (chain->archive(i).wave() == want) wave_index = i;
      }
      if (wave_index < 0) {
        std::fprintf(stderr, "cgsim: wave %u is not in this chain\n",
                     static_cast<unsigned>(want));
        return 1;
      }
    }
    // The entity map is the builtin static table (Corpus::entities()
    // returns the same), so no corpus reconstruction is needed.
    analysis::Analyzer analyzer(entities::EntityMap::builtin());
    if (args.has("site")) {
      const int rank = args.get_int("site", 0);
      const auto log = chain->visit(rank, wave_index, &error);
      if (!log) {
        std::fprintf(stderr, "cgsim: site %d: %s\n", rank,
                     error.to_string().c_str());
        return 1;
      }
      analyzer.ingest(*log);
      std::printf("https://%s/ — %zu script inclusions, %zu cookie writes, "
                  "%zu requests (attempts: %d, failure: %s)\n",
                  log->site_host.c_str(), log->includes.size(),
                  log->script_sets.size(), log->requests.size(),
                  log->attempts,
                  std::string(fault::failure_class_name(log->failure))
                      .c_str());
      std::printf("%s\n",
                  report::summary_to_json(analyzer, 10).dump(2).c_str());
      return 0;
    }
    if (!analysis::analyze_wave(*chain, wave_index, analyzer, &error)) {
      std::fprintf(stderr, "cgsim: archive chain is corrupt (%s)\n",
                   error.to_string().c_str());
      return 1;
    }
    return print_analysis(args, analyzer) ? 0 : 1;
  }

  const std::string& path = paths.front();
  const store::Reader* reader = &readers.front();

  // Rebuild the corpus the archive was packed from — the entity map drives
  // the analyzer, and provenance in the footer pins the exact corpus.
  corpus::CorpusParams params;
  params.site_count = reader->site_count();
  params.seed = reader->corpus_seed();
  corpus::Corpus corpus(params);

  if (args.has("site")) {
    const int rank = args.get_int("site", 0);
    // Footer-index random access: one binary search + one block decode,
    // never a file walk. The latency line on stderr makes that visible
    // (and regressing to a scan impossible to miss); stdout stays
    // byte-deterministic.
    const auto lookup_start =
        std::chrono::steady_clock::now();  // cglint: allow(D1) — per-query latency diagnostic on stderr; stdout bytes never depend on it
    const auto log = reader->visit(rank, &error);
    const std::chrono::duration<double, std::micro> lookup_elapsed =
        std::chrono::steady_clock::now() - lookup_start;  // cglint: allow(D1) — per-query latency diagnostic on stderr; stdout bytes never depend on it
    if (!log) {
      std::fprintf(stderr, "cgsim: site %d: %s\n", rank,
                   error.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "cgsim: site %d decoded in %.1f us (index random access, "
                 "%d-site archive)\n",
                 rank, lookup_elapsed.count(), reader->site_count());
    analysis::Analyzer analyzer(corpus.entities());
    analyzer.ingest(*log);
    std::printf("https://%s/ — %zu script inclusions, %zu cookie writes, "
                "%zu requests (attempts: %d, failure: %s)\n",
                log->site_host.c_str(), log->includes.size(),
                log->script_sets.size(), log->requests.size(), log->attempts,
                std::string(fault::failure_class_name(log->failure)).c_str());
    std::printf("%s\n", report::summary_to_json(analyzer, 10).dump(2).c_str());
    return 0;
  }

  analysis::Analyzer analyzer(corpus.entities());
  if (!analysis::analyze_archive(*reader, analyzer, &error)) {
    std::fprintf(stderr, "cgsim: archive %s is corrupt (%s)\n", path.c_str(),
                 error.to_string().c_str());
    return 1;
  }
  return print_analysis(args, analyzer) ? 0 : 1;
}

// CRC-walks every block; the cheap "is this artifact intact?" gate.
int cmd_verify_archive(const std::string& path) {
  store::Error error;
  const auto reader = store::Reader::open(path, &error);
  if (!reader) {
    std::fprintf(stderr, "cgsim: %s: rejected (%s)\n", path.c_str(),
                 error.to_string().c_str());
    return 1;
  }
  const auto stats = reader->verify(&error);
  if (!stats) {
    std::fprintf(stderr, "cgsim: %s: corrupt (%s)\n", path.c_str(),
                 error.to_string().c_str());
    return 1;
  }
  std::printf(
      "%s: ok — %d sites, %llu records, %llu bytes (%.1f bytes/site), "
      "format v%u, schema v%u, corpus seed 0x%llX\n",
      path.c_str(), stats->sites,
      static_cast<unsigned long long>(stats->record_count),
      static_cast<unsigned long long>(stats->file_bytes),
      stats->sites > 0
          ? static_cast<double>(stats->file_bytes) / stats->sites
          : 0.0,
      static_cast<unsigned>(store::kFormatVersion),
      static_cast<unsigned>(reader->schema_version()),
      static_cast<unsigned long long>(reader->corpus_seed()));
  std::printf("provenance: policy %s, %s archive, wave %u",
              std::string(store::archive_policy_name(reader->policy()))
                  .c_str(),
              std::string(store::archive_kind_name(reader->kind())).c_str(),
              static_cast<unsigned>(reader->wave()));
  if (reader->kind() == store::ArchiveKind::kDelta) {
    std::printf(" (base wave %u, %zu inherited ranks)",
                static_cast<unsigned>(reader->base().wave),
                reader->inherited_ranks().size());
  }
  std::printf("\n");
  return 0;
}

int cmd_audit(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  const int index = args.get_int("site", 0) % corpus.size();
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;  // visit() never applies the fault plan
  const auto log = crawler.visit(index, options);

  analysis::Analyzer analyzer(corpus.entities());
  analyzer.ingest(log);
  std::printf("https://%s/ — %zu script inclusions, %zu cookie writes, "
              "%zu requests\n",
              corpus.site(index).host.c_str(), log.includes.size(),
              log.script_sets.size(), log.requests.size());
  std::printf("%s\n", report::summary_to_json(analyzer, 10).dump(2).c_str());
  return 0;
}

int cmd_breakage(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  breakage::BreakageEvaluator evaluator(corpus);
  const auto sample = evaluator.sample_sites(args.get_int("sample", 100),
                                             corpus.size());
  for (const auto mode :
       {breakage::GuardMode::kStrict, breakage::GuardMode::kEntityGrouping,
        breakage::GuardMode::kGroupingPlusPolicies}) {
    const auto summary = evaluator.summarize(sample, mode);
    std::printf("%-42s major breakage on %.1f%% of %d sites\n",
                breakage::to_string(mode),
                100.0 * summary.sites_major / summary.sites, summary.sites);
  }
  return 0;
}

// Validates an exported trace: parses it with report::Json (so any
// serialization bug that breaks JSON fails here), checks the Chrome
// trace-event envelope, and verifies every track's events are
// non-decreasing in virtual time — the determinism contract of the
// stable-sorted per-site merge. (Global monotonicity is deliberately not
// required: site clocks are staggered and retries shift them, so a later
// track can legitimately start before an earlier track's retries end.)
int cmd_trace_check(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cgsim: cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto parsed = report::Json::parse(text);
  if (!parsed || !parsed->is_object()) {
    std::fprintf(stderr, "cgsim: %s is not valid JSON\n", path.c_str());
    return 1;
  }
  const auto* events = parsed->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "cgsim: %s has no traceEvents array\n", path.c_str());
    return 1;
  }

  std::map<long long, long long> last_ts_by_track;
  std::size_t spans = 0, instants = 0, counters = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& event = events->at(i);
    const auto* ph = event.find("ph");
    const auto* tid = event.find("tid");
    const auto* ts = event.find("ts");
    if (ph == nullptr || !ph->is_string() || tid == nullptr ||
        ts == nullptr || event.find("name") == nullptr ||
        event.find("pid") == nullptr) {
      std::fprintf(stderr, "cgsim: event %zu is missing required fields\n", i);
      return 1;
    }
    const std::string& phase = ph->as_string();
    if (phase == "X") {
      ++spans;
      if (event.find("dur") == nullptr) {
        std::fprintf(stderr, "cgsim: complete event %zu has no dur\n", i);
        return 1;
      }
    } else if (phase == "i") {
      ++instants;
    } else if (phase == "C") {
      ++counters;
    } else {
      std::fprintf(stderr, "cgsim: event %zu has unexpected phase %s\n", i,
                   phase.c_str());
      return 1;
    }
    const long long track = tid->as_int();
    const long long when = ts->as_int();
    const auto it = last_ts_by_track.find(track);
    if (it != last_ts_by_track.end() && when < it->second) {
      std::fprintf(stderr,
                   "cgsim: event %zu goes back in time on track %lld "
                   "(%lld < %lld)\n",
                   i, track, when, it->second);
      return 1;
    }
    last_ts_by_track[track] = when;
  }
  std::printf(
      "%s: ok — %zu events (%zu spans, %zu instants, %zu counter samples) "
      "on %zu tracks, non-decreasing virtual time per track\n",
      path.c_str(), events->size(), spans, instants, counters,
      last_ts_by_track.size());
  return 0;
}

int cmd_perf(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  const auto comparison = perf::compare_page_load(corpus, corpus.size(), {},
                                                  args.get_int("threads", 1));
  std::printf("load event: %.0f ms -> %.0f ms (overhead %.0f ms)\n",
              comparison.normal.load_event.mean_ms,
              comparison.guarded.load_event.mean_ms,
              comparison.mean_overhead_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "crawl") return cmd_crawl(args);
  if (args.command == "audit") return cmd_audit(args);
  if (args.command == "breakage") return cmd_breakage(args);
  if (args.command == "perf") return cmd_perf(args);
  if (args.command == "trace-check") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: cgsim trace-check FILE\n");
      return 2;
    }
    return cmd_trace_check(argv[2]);
  }
  if (args.command == "pack") return cmd_pack(args);
  if (args.command == "query") return cmd_query(args);
  if (args.command == "verify-archive") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: cgsim verify-archive FILE\n");
      return 2;
    }
    return cmd_verify_archive(argv[2]);
  }
  std::fprintf(stderr,
               "usage: cgsim <crawl|audit|breakage|perf|trace-check|pack|"
               "query|verify-archive>\n"
               "             [--sites N] [--threads T] [--guard] "
               "[--policy none|cookieguard|fpi|chips] [--site I] "
               "[--sample K]\n"
               "             [--stream] [--wave W] [--evo-seed S] "
               "[--totals-only] [--base FILE,...]\n"
               "             [--json FILE] [--pairs-csv FILE] "
               "[--domains-csv FILE]\n"
               "             [--trace FILE] [--metrics FILE] "
               "[--runtime-metrics FILE]\n"
               "             [--out FILE] [--archive FILE[,FILE...]]\n");
  return 2;
}
