// cgsim: command-line driver for the CookieGuard simulator.
//
//   cgsim crawl    [--sites N] [--threads T] [--guard] [--no-faults]
//                  [--json FILE] [--pairs-csv FILE] [--domains-csv FILE]
//                  [--health FILE] [--checkpoint FILE] [--checkpoint-every N]
//                  [--resume FILE]
//   cgsim audit    [--sites N] --site INDEX
//   cgsim breakage [--sites N] [--sample K]
//   cgsim perf     [--sites N] [--threads T]
//
// --threads 0 (the default for crawl/perf here is 1) uses every hardware
// thread; any thread count produces byte-identical output.
//
// Everything the benches compute, behind one adoptable binary with
// machine-readable output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "breakage/breakage.h"
#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "perf/perf.h"
#include "report/report.h"
#include "runtime/thread_pool.h"

namespace {

using namespace cg;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoi(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    // Flags without values: --guard
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }
  return args;
}

corpus::Corpus make_corpus(const Args& args) {
  corpus::CorpusParams params;
  params.site_count = args.get_int("sites", 2000);
  return corpus::Corpus(params);
}

int cmd_crawl(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());

  crawler::CrawlOptions options;
  options.threads = args.get_int("threads", 1);
  if (args.has("no-faults")) options.fault_plan.reset();

  // One CookieGuard per crawl worker — extensions are stateful, so each
  // thread needs its own instance (behaviour is per-visit deterministic).
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  if (args.has("guard")) {
    const int workers = options.threads <= 0
                            ? runtime::ThreadPool::hardware_threads()
                            : options.threads;
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>());
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
  }

  // Crash-safe progress: persist a checkpoint every N sites; --resume
  // continues a killed crawl from the persisted file.
  const std::string checkpoint_path = args.get("checkpoint", "");
  if (!checkpoint_path.empty()) {
    options.checkpoint_interval = args.get_int("checkpoint-every", 100);
    options.on_checkpoint = [&](const crawler::CrawlCheckpoint& checkpoint) {
      std::ofstream out(checkpoint_path);
      out << checkpoint.to_json_string() << '\n';
    };
  }

  const auto sink = [&](instrument::VisitLog&& log) { analyzer.ingest(log); };
  crawler::CrawlHealth health;
  if (args.has("resume")) {
    const std::string path = args.get("resume", "");
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const auto checkpoint = crawler::CrawlCheckpoint::from_json_string(text);
    if (!checkpoint) {
      std::fprintf(stderr, "cgsim: cannot parse checkpoint %s\n", path.c_str());
      return 1;
    }
    if (checkpoint->corpus_seed != corpus.params().seed ||
        checkpoint->target_count > corpus.size()) {
      std::fprintf(stderr, "cgsim: checkpoint does not match this corpus\n");
      return 1;
    }
    std::printf("resuming at site %d of %d...\n", checkpoint->next_index,
                checkpoint->target_count);
    health = crawler.resume(*checkpoint, options, sink);
  } else {
    std::printf("crawling %d sites%s...\n", corpus.size(),
                args.has("guard") ? " with CookieGuard" : "");
    health = crawler.crawl(corpus.size(), options, sink);
  }

  std::printf(
      "crawl health: %d retained, %d excluded (%.1f%%), %d degraded, "
      "%d recovered by retries (%d attempts total)\n",
      health.sites_retained, health.sites_excluded,
      100.0 * health.exclusion_rate(), health.sites_degraded,
      health.sites_recovered, health.total_attempts);
  if (args.has("health")) {
    std::ofstream out(args.get("health", "health.json"));
    out << health.to_json().dump(2) << '\n';
    std::printf("wrote %s\n", args.get("health", "health.json").c_str());
  }

  const auto& t = analyzer.totals();
  const double n = t.sites_complete;
  std::printf("sites analyzed: %d\n", t.sites_complete);
  std::printf("cross-domain exfiltration: %.1f%% | overwriting: %.1f%% | "
              "deletion: %.1f%%\n",
              100.0 * t.sites_doc_exfil / n, 100.0 * t.sites_doc_overwrite / n,
              100.0 * t.sites_doc_delete / n);

  if (args.has("json")) {
    std::ofstream out(args.get("json", "summary.json"));
    out << report::summary_to_json(analyzer, 20).dump(2) << '\n';
    std::printf("wrote %s\n", args.get("json", "summary.json").c_str());
  }
  if (args.has("pairs-csv")) {
    std::ofstream out(args.get("pairs-csv", "pairs.csv"));
    report::write_pairs_csv(analyzer, 20, out);
    std::printf("wrote %s\n", args.get("pairs-csv", "pairs.csv").c_str());
  }
  if (args.has("domains-csv")) {
    std::ofstream out(args.get("domains-csv", "domains.csv"));
    report::write_domains_csv(analyzer, 20, out);
    std::printf("wrote %s\n", args.get("domains-csv", "domains.csv").c_str());
  }
  return 0;
}

int cmd_audit(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  const int index = args.get_int("site", 0) % corpus.size();
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;  // visit() never applies the fault plan
  const auto log = crawler.visit(index, options);

  analysis::Analyzer analyzer(corpus.entities());
  analyzer.ingest(log);
  std::printf("https://%s/ — %zu script inclusions, %zu cookie writes, "
              "%zu requests\n",
              corpus.site(index).host.c_str(), log.includes.size(),
              log.script_sets.size(), log.requests.size());
  std::printf("%s\n", report::summary_to_json(analyzer, 10).dump(2).c_str());
  return 0;
}

int cmd_breakage(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  breakage::BreakageEvaluator evaluator(corpus);
  const auto sample = evaluator.sample_sites(args.get_int("sample", 100),
                                             corpus.size());
  for (const auto mode :
       {breakage::GuardMode::kStrict, breakage::GuardMode::kEntityGrouping,
        breakage::GuardMode::kGroupingPlusPolicies}) {
    const auto summary = evaluator.summarize(sample, mode);
    std::printf("%-42s major breakage on %.1f%% of %d sites\n",
                breakage::to_string(mode),
                100.0 * summary.sites_major / summary.sites, summary.sites);
  }
  return 0;
}

int cmd_perf(const Args& args) {
  corpus::Corpus corpus(make_corpus(args));
  const auto comparison = perf::compare_page_load(corpus, corpus.size(), {},
                                                  args.get_int("threads", 1));
  std::printf("load event: %.0f ms -> %.0f ms (overhead %.0f ms)\n",
              comparison.normal.load_event.mean_ms,
              comparison.guarded.load_event.mean_ms,
              comparison.mean_overhead_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "crawl") return cmd_crawl(args);
  if (args.command == "audit") return cmd_audit(args);
  if (args.command == "breakage") return cmd_breakage(args);
  if (args.command == "perf") return cmd_perf(args);
  std::fprintf(stderr,
               "usage: cgsim <crawl|audit|breakage|perf> [--sites N] "
               "[--threads T] [--guard] [--site I] [--sample K]\n"
               "             [--json FILE] [--pairs-csv FILE] "
               "[--domains-csv FILE]\n");
  return 2;
}
