// Quickstart: crawl a small synthetic corpus, measure cross-domain cookie
// abuse, then turn CookieGuard on and watch it stop.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "analysis/analyzer.h"
#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"

int main() {
  using namespace cg;

  // 1. Generate a synthetic web of 300 sites (the full reproduction uses
  //    20,000; the benches do that).
  corpus::CorpusParams params;
  params.site_count = 1000;
  corpus::Corpus corpus(params);
  crawler::Crawler crawler(corpus);

  std::printf("Generated %d sites, %zu catalog scripts.\n\n", corpus.size(),
              corpus.catalog().size());

  // 2. Crawl with the measurement extension only (paper §4) and analyze.
  analysis::Analyzer baseline(corpus.entities());
  crawler::CrawlOptions options;
  options.fault_plan.reset();  // clean crawl: no injected faults
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    baseline.ingest(log);
  });

  const auto& t = baseline.totals();
  const double n = t.sites_complete;
  std::printf("== Plain browser ==\n");
  std::printf("sites crawled ................ %d\n", t.sites_crawled);
  std::printf("sites w/ 3rd-party scripts ... %.1f%%\n",
              100.0 * t.sites_with_third_party / t.sites_crawled);
  std::printf("cross-domain exfiltration .... %.1f%% of sites\n",
              100.0 * t.sites_doc_exfil / n);
  std::printf("cross-domain overwriting ..... %.1f%% of sites\n",
              100.0 * t.sites_doc_overwrite / n);
  std::printf("cross-domain deletion ........ %.1f%% of sites\n",
              100.0 * t.sites_doc_delete / n);

  // 3. Same crawl with CookieGuard enforcing per-script-origin isolation.
  cookieguard::CookieGuard guard;
  analysis::Analyzer guarded(corpus.entities());
  options.extra_extensions = {&guard};
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    guarded.ingest(log);
  });

  const auto& g = guarded.totals();
  std::printf("\n== With CookieGuard ==\n");
  std::printf("cross-domain exfiltration .... %.1f%% of sites\n",
              100.0 * g.sites_doc_exfil / n);
  std::printf("cross-domain overwriting ..... %.1f%% of sites\n",
              100.0 * g.sites_doc_overwrite / n);
  std::printf("cross-domain deletion ........ %.1f%% of sites\n",
              100.0 * g.sites_doc_delete / n);
  std::printf("cookies hidden from readers .. %llu\n",
              static_cast<unsigned long long>(guard.stats().cookies_hidden));
  std::printf("cross-domain writes blocked .. %llu\n",
              static_cast<unsigned long long>(guard.stats().writes_blocked));

  std::printf("avg TP scripts/site .......... %.1f\n",
              double(t.third_party_script_count) / t.sites_crawled);
  std::printf("TP ad/tracking share ......... %.1f%%\n",
              100.0 * t.third_party_ad_tracking_count /
                  std::max(1LL, t.third_party_script_count));
  std::printf("indirect/direct ratio ........ %.2f\n",
              double(t.indirect_inclusions) / std::max(1LL, t.direct_inclusions));
  std::printf("doc.cookie sites ............. %.1f%%\n",
              100.0 * t.sites_using_document_cookie / n);
  std::printf("cookieStore sites ............ %.1f%%\n",
              100.0 * t.sites_using_cookie_store / n);
  std::printf("unique cookie pairs .......... %d (doc) %d (store)\n",
              baseline.pair_count(cg::cookies::CookieSource::kDocumentCookie),
              baseline.pair_count(cg::cookies::CookieSource::kCookieStore));
  std::printf("exfiltrated pairs ............ %d (doc) %d (store)\n",
              baseline.exfiltrated_pair_count(cg::cookies::CookieSource::kDocumentCookie),
              baseline.exfiltrated_pair_count(cg::cookies::CookieSource::kCookieStore));
  std::printf("avg cookies/site ............. %.1f TP, %.1f FP\n",
              double(t.tp_cookies_set) / n, double(t.fp_cookies_set) / n);
  std::printf("DOM cross-mod sites .......... %.1f%%\n",
              100.0 * t.sites_with_cross_dom_modification / n);

  const auto top = baseline.top_exfiltrator_domains(5);
  std::printf("\nTop exfiltrator domains (plain browser):\n");
  for (const auto& [domain, count] : top) {
    std::printf("  %-28s %d unique cookies\n", domain.c_str(), count);
  }
  return 0;
}
