// authenticated_session: the §8 "future work" scenario — what script-based
// attackers can reach in an *authenticated* browsing context.
//
// A hand-built shop performs a login: the server sets an HttpOnly session
// cookie (correct practice) and a non-HttpOnly account token (the bad
// practice the paper warns about). A tracker in the main frame then ships
// the whole visible jar. The demo shows:
//   1. HttpOnly keeps the session id out of every script's reach,
//   2. the non-HttpOnly token leaks to the tracker (session-hijack risk),
//   3. CookieGuard closes that hole without touching the site's own code.
#include <cstdio>

#include "browser/browser.h"
#include "browser/page.h"
#include "cookieguard/cookieguard.h"
#include "script/ops.h"

namespace {

using namespace cg;

browser::ScriptCatalog build_catalog() {
  browser::ScriptCatalog catalog;
  script::ScriptSpec tracker;
  tracker.id = "greedy-tracker";
  tracker.url_template = "https://cdn.greedy-tracker.net/t.js";
  tracker.category = script::Category::kAdvertising;
  tracker.ops = {script::exfiltrate_jar("sync.greedy-tracker.net",
                                        script::Encoding::kRaw, "/grab")};
  catalog.add(std::move(tracker));
  return catalog;
}

void run(bool with_guard) {
  const auto catalog = build_catalog();
  browser::Browser browser({}, /*seed=*/11);
  browser.set_catalog(&catalog);
  browser::DocumentSpec doc;  // tracker loads on every page
  doc.script_ids = {"greedy-tracker"};
  browser.set_document_provider([doc](const net::Url&) { return doc; });

  // The shop's server: login sets the session (HttpOnly) and an account
  // token (not HttpOnly — the mistake).
  browser.network().register_host(
      "www.bank-demo.com", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        if (req.url.path() == "/api/login") {
          res.headers.add("Set-Cookie",
                          "sid=5f2ac9e4b1d87c3a90e1; Path=/; HttpOnly");
          res.headers.add("Set-Cookie",
                          "account_token=acct4417628390; Path=/");
        }
        return res;
      });

  // Capture what the tracker's endpoint receives.
  std::string grabbed;
  browser.network().register_host(
      "sync.greedy-tracker.net", [&](const net::HttpRequest& req) {
        grabbed = req.url.query();
        return net::HttpResponse{};
      });

  cookieguard::CookieGuard guard;
  if (with_guard) browser.add_extension(&guard);

  auto page = browser.navigate(net::Url::must_parse("https://www.bank-demo.com/"));

  // The user logs in: the site's own script calls the login endpoint.
  script::ExecContext site_script;
  site_script.script_url = "https://www.bank-demo.com/assets/app.js";
  site_script.script_domain = "bank-demo.com";
  page->run_as(site_script, [&](script::PageServices& services) {
    services.send_request(
        site_script, net::Url::must_parse("https://www.bank-demo.com/api/login"));
  });

  // The tracker fires again post-login (a second page view).
  page->run_catalog_script("greedy-tracker");
  page->loop().run_until_idle();

  std::printf("  jar after login: %zu cookies (sid is HttpOnly)\n",
              browser.jar().size());
  std::printf("  tracker endpoint received: %s\n",
              grabbed.empty() ? "(nothing)" : grabbed.c_str());
  const bool sid_leaked = grabbed.find("5f2ac9e4b1d87c3a90e1") != std::string::npos;
  const bool token_leaked = grabbed.find("acct4417628390") != std::string::npos;
  std::printf("  session id leaked: %s | account token leaked: %s\n",
              sid_leaked ? "YES" : "no", token_leaked ? "YES" : "no");
}

}  // namespace

int main() {
  std::printf("Authenticated-context pilot (paper section 8 future work)\n");
  std::printf("=========================================================\n");
  std::printf("\n-- plain browser --\n");
  run(false);
  std::printf("\n-- with CookieGuard --\n");
  run(true);
  std::printf("\nHttpOnly alone protects the session id; CookieGuard also "
              "keeps the mis-flagged\naccount token away from main-frame "
              "third parties.\n");
  return 0;
}
